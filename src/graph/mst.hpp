// Minimum spanning trees on dense metric graphs.
//
// Prim's O(n^2) variant is the workhorse: the q-rooted algorithms operate
// on complete Euclidean graphs where the dense scan is optimal. Kruskal is
// provided for sparse edge lists and as an independent cross-check in the
// property tests.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "geom/distance.hpp"
#include "util/assert.hpp"

namespace mwc::graph {

struct Edge {
  std::size_t u = 0;
  std::size_t v = 0;
  double w = 0.0;
};

struct MstResult {
  std::vector<Edge> edges;  ///< n-1 edges for a connected graph of n nodes
  double total_weight = 0.0;
};

/// Prim's algorithm over a complete graph given by any callable distance
/// source `dist(i, j)`, starting from node `root`. O(n^2) time, O(n)
/// extra space. Statically dispatched — no per-probe type erasure — so
/// this is the form the distance-oracle hot paths call; the
/// std::function overload below delegates here.
template <typename DistFn>
MstResult prim_mst_with(std::size_t n, DistFn&& dist, std::size_t root = 0) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  MstResult result;
  if (n == 0) return result;
  MWC_ASSERT(root < n);

  std::vector<double> best(n, kInf);
  std::vector<std::size_t> best_from(n, kNone);
  std::vector<bool> in_tree(n, false);

  best[root] = 0.0;
  result.edges.reserve(n > 0 ? n - 1 : 0);

  for (std::size_t iter = 0; iter < n; ++iter) {
    // Extract the cheapest fringe node.
    std::size_t u = kNone;
    double u_cost = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < u_cost) {
        u_cost = best[v];
        u = v;
      }
    }
    MWC_ASSERT_MSG(u != kNone, "graph must be connected (finite distances)");
    in_tree[u] = true;
    if (best_from[u] != kNone) {
      result.edges.push_back(Edge{best_from[u], u, best[u]});
      result.total_weight += best[u];
    }
    // Relax all non-tree nodes through u.
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double d = dist(u, v);
      if (d < best[v]) {
        best[v] = d;
        best_from[v] = u;
      }
    }
  }
  return result;
}

/// Prim's algorithm behind a type-erased distance source (convenience
/// form; prefer prim_mst_with in hot paths).
MstResult prim_mst(std::size_t n,
                   const std::function<double(std::size_t, std::size_t)>& dist,
                   std::size_t root = 0);

/// Prim's algorithm over a precomputed distance matrix (fast path, no
/// std::function indirection in the inner loop).
MstResult prim_mst(const mwc::geom::DistanceMatrix& dist,
                   std::size_t root = 0);

/// Kruskal's algorithm on an explicit edge list over n nodes. Returns the
/// minimum spanning forest (spanning tree if connected).
MstResult kruskal_mst(std::size_t n, std::vector<Edge> edges);

/// Parent array (parent[root] == root) of the MST re-rooted at `root`,
/// computed from its edge list. Helper for decomposing contracted MSTs.
std::vector<std::size_t> mst_parents(std::size_t n,
                                     std::span<const Edge> edges,
                                     std::size_t root);

}  // namespace mwc::graph
