#include "graph/dsu.hpp"

#include <numeric>

#include "util/assert.hpp"

namespace mwc::graph {

Dsu::Dsu(std::size_t n) { reset(n); }

void Dsu::reset(std::size_t n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  size_.assign(n, 1);
  num_sets_ = n;
}

std::size_t Dsu::find(std::size_t x) noexcept {
  MWC_DEBUG_ASSERT(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool Dsu::unite(std::size_t a, std::size_t b) noexcept {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

std::size_t Dsu::set_size(std::size_t x) noexcept { return size_[find(x)]; }

}  // namespace mwc::graph
