#include "graph/forest.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"

namespace mwc::graph {

RootedTree::RootedTree(std::size_t root, std::span<const Edge> edges)
    : root_(root), edges_(edges.begin(), edges.end()) {
  for (const Edge& e : edges_) total_weight_ += e.w;

  // Discover nodes by DFS from the root so `nodes_` is deterministic and
  // `valid()` can compare reachable count to edge count.
  std::unordered_map<std::size_t, std::vector<std::size_t>> adj;
  for (const Edge& e : edges_) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::unordered_set<std::size_t> seen{root_};
  std::vector<std::size_t> stack{root_};
  nodes_.push_back(root_);
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    const auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (std::size_t v : it->second) {
      if (seen.insert(v).second) {
        nodes_.push_back(v);
        stack.push_back(v);
      }
    }
  }
}

std::vector<std::size_t> RootedTree::preorder() const {
  std::unordered_map<std::size_t, std::vector<std::size_t>> adj;
  for (const Edge& e : edges_) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<std::size_t> order;
  order.reserve(nodes_.size());
  std::unordered_set<std::size_t> seen{root_};
  // Explicit stack DFS; children pushed in reverse so they pop in
  // insertion order.
  std::vector<std::size_t> stack{root_};
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    order.push_back(u);
    const auto it = adj.find(u);
    if (it == adj.end()) continue;
    const auto& nbrs = it->second;
    for (auto rit = nbrs.rbegin(); rit != nbrs.rend(); ++rit) {
      if (seen.insert(*rit).second) stack.push_back(*rit);
    }
  }
  return order;
}

bool RootedTree::valid() const {
  // A tree on k nodes has k-1 edges and all nodes reachable from the root.
  if (nodes_.empty()) return false;
  if (nodes_.size() != edges_.size() + 1) return false;
  // nodes_ was built by reachability, so membership implies connectivity;
  // verify no edge mentions a node outside the reachable set.
  std::unordered_set<std::size_t> node_set(nodes_.begin(), nodes_.end());
  for (const Edge& e : edges_) {
    if (!node_set.count(e.u) || !node_set.count(e.v)) return false;
  }
  return true;
}

}  // namespace mwc::graph
