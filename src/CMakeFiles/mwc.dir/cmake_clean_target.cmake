file(REMOVE_RECURSE
  "libmwc.a"
)
