
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/charging/baselines.cpp" "src/CMakeFiles/mwc.dir/charging/baselines.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/charging/baselines.cpp.o.d"
  "/root/repo/src/charging/exact_schedule.cpp" "src/CMakeFiles/mwc.dir/charging/exact_schedule.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/charging/exact_schedule.cpp.o.d"
  "/root/repo/src/charging/fleet.cpp" "src/CMakeFiles/mwc.dir/charging/fleet.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/charging/fleet.cpp.o.d"
  "/root/repo/src/charging/greedy.cpp" "src/CMakeFiles/mwc.dir/charging/greedy.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/charging/greedy.cpp.o.d"
  "/root/repo/src/charging/min_total_distance.cpp" "src/CMakeFiles/mwc.dir/charging/min_total_distance.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/charging/min_total_distance.cpp.o.d"
  "/root/repo/src/charging/rounding.cpp" "src/CMakeFiles/mwc.dir/charging/rounding.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/charging/rounding.cpp.o.d"
  "/root/repo/src/charging/schedule.cpp" "src/CMakeFiles/mwc.dir/charging/schedule.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/charging/schedule.cpp.o.d"
  "/root/repo/src/charging/var_heuristic.cpp" "src/CMakeFiles/mwc.dir/charging/var_heuristic.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/charging/var_heuristic.cpp.o.d"
  "/root/repo/src/exp/config.cpp" "src/CMakeFiles/mwc.dir/exp/config.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/exp/config.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/CMakeFiles/mwc.dir/exp/report.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/exp/report.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/CMakeFiles/mwc.dir/exp/runner.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/exp/runner.cpp.o.d"
  "/root/repo/src/geom/bbox.cpp" "src/CMakeFiles/mwc.dir/geom/bbox.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/geom/bbox.cpp.o.d"
  "/root/repo/src/geom/distance.cpp" "src/CMakeFiles/mwc.dir/geom/distance.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/geom/distance.cpp.o.d"
  "/root/repo/src/geom/grid_index.cpp" "src/CMakeFiles/mwc.dir/geom/grid_index.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/geom/grid_index.cpp.o.d"
  "/root/repo/src/geom/kdtree.cpp" "src/CMakeFiles/mwc.dir/geom/kdtree.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/geom/kdtree.cpp.o.d"
  "/root/repo/src/geom/point.cpp" "src/CMakeFiles/mwc.dir/geom/point.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/geom/point.cpp.o.d"
  "/root/repo/src/graph/dsu.cpp" "src/CMakeFiles/mwc.dir/graph/dsu.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/graph/dsu.cpp.o.d"
  "/root/repo/src/graph/euler.cpp" "src/CMakeFiles/mwc.dir/graph/euler.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/graph/euler.cpp.o.d"
  "/root/repo/src/graph/forest.cpp" "src/CMakeFiles/mwc.dir/graph/forest.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/graph/forest.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "src/CMakeFiles/mwc.dir/graph/mst.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/graph/mst.cpp.o.d"
  "/root/repo/src/obs/registry.cpp" "src/CMakeFiles/mwc.dir/obs/registry.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/obs/registry.cpp.o.d"
  "/root/repo/src/obs/span.cpp" "src/CMakeFiles/mwc.dir/obs/span.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/obs/span.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/mwc.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/replay.cpp" "src/CMakeFiles/mwc.dir/sim/replay.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/sim/replay.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/mwc.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/solve.cpp" "src/CMakeFiles/mwc.dir/sim/solve.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/sim/solve.cpp.o.d"
  "/root/repo/src/svc/delta.cpp" "src/CMakeFiles/mwc.dir/svc/delta.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/svc/delta.cpp.o.d"
  "/root/repo/src/svc/engine.cpp" "src/CMakeFiles/mwc.dir/svc/engine.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/svc/engine.cpp.o.d"
  "/root/repo/src/svc/json.cpp" "src/CMakeFiles/mwc.dir/svc/json.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/svc/json.cpp.o.d"
  "/root/repo/src/svc/plan_cache.cpp" "src/CMakeFiles/mwc.dir/svc/plan_cache.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/svc/plan_cache.cpp.o.d"
  "/root/repo/src/svc/server.cpp" "src/CMakeFiles/mwc.dir/svc/server.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/svc/server.cpp.o.d"
  "/root/repo/src/svc/wire.cpp" "src/CMakeFiles/mwc.dir/svc/wire.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/svc/wire.cpp.o.d"
  "/root/repo/src/tsp/candidates.cpp" "src/CMakeFiles/mwc.dir/tsp/candidates.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/tsp/candidates.cpp.o.d"
  "/root/repo/src/tsp/construct.cpp" "src/CMakeFiles/mwc.dir/tsp/construct.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/tsp/construct.cpp.o.d"
  "/root/repo/src/tsp/exact.cpp" "src/CMakeFiles/mwc.dir/tsp/exact.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/tsp/exact.cpp.o.d"
  "/root/repo/src/tsp/improve.cpp" "src/CMakeFiles/mwc.dir/tsp/improve.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/tsp/improve.cpp.o.d"
  "/root/repo/src/tsp/oracle.cpp" "src/CMakeFiles/mwc.dir/tsp/oracle.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/tsp/oracle.cpp.o.d"
  "/root/repo/src/tsp/qrooted.cpp" "src/CMakeFiles/mwc.dir/tsp/qrooted.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/tsp/qrooted.cpp.o.d"
  "/root/repo/src/tsp/split.cpp" "src/CMakeFiles/mwc.dir/tsp/split.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/tsp/split.cpp.o.d"
  "/root/repo/src/tsp/tour.cpp" "src/CMakeFiles/mwc.dir/tsp/tour.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/tsp/tour.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/mwc.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/mwc.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/mwc.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/mwc.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/mwc.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/mwc.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/mwc.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/viz/chart.cpp" "src/CMakeFiles/mwc.dir/viz/chart.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/viz/chart.cpp.o.d"
  "/root/repo/src/viz/render.cpp" "src/CMakeFiles/mwc.dir/viz/render.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/viz/render.cpp.o.d"
  "/root/repo/src/viz/svg.cpp" "src/CMakeFiles/mwc.dir/viz/svg.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/viz/svg.cpp.o.d"
  "/root/repo/src/wsn/cycles.cpp" "src/CMakeFiles/mwc.dir/wsn/cycles.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/wsn/cycles.cpp.o.d"
  "/root/repo/src/wsn/deployment.cpp" "src/CMakeFiles/mwc.dir/wsn/deployment.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/wsn/deployment.cpp.o.d"
  "/root/repo/src/wsn/energy.cpp" "src/CMakeFiles/mwc.dir/wsn/energy.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/wsn/energy.cpp.o.d"
  "/root/repo/src/wsn/network.cpp" "src/CMakeFiles/mwc.dir/wsn/network.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/wsn/network.cpp.o.d"
  "/root/repo/src/wsn/predictor.cpp" "src/CMakeFiles/mwc.dir/wsn/predictor.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/wsn/predictor.cpp.o.d"
  "/root/repo/src/wsn/storm.cpp" "src/CMakeFiles/mwc.dir/wsn/storm.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/wsn/storm.cpp.o.d"
  "/root/repo/src/wsn/trace.cpp" "src/CMakeFiles/mwc.dir/wsn/trace.cpp.o" "gcc" "src/CMakeFiles/mwc.dir/wsn/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
