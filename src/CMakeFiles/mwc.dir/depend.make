# Empty dependencies file for mwc.
# This may be replaced when dependencies are built.
