// Fixed-size thread pool with a blocking work queue plus a `parallel_for`
// helper. The experiment runner uses it to execute independent simulation
// trials concurrently; determinism is preserved because every trial derives
// its own Rng stream from (seed, trial_index), independent of scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace mwc {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency, at
  /// least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future observes its result/exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_)
        throw std::runtime_error("ThreadPool::submit after shutdown");
#if MWC_OBS_ENABLED
      queue_.push(QueuedTask{[task] { (*task)(); }, obs::now_us()});
#else
      queue_.push(QueuedTask{[task] { (*task)(); }, 0.0});
#endif
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until all currently queued and running tasks finish.
  void wait_idle();

 private:
  struct QueuedTask {
    std::function<void()> fn;
    /// obs::now_us() at submit time; queue-wait telemetry (0 when the
    /// obs macros are compiled out).
    double enqueue_us = 0.0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [begin, end) across `pool`, in chunks. Blocks until
/// done; rethrows the first task exception encountered.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk = 1);

/// Sequential fallback used when a caller opts out of threading.
void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn);

}  // namespace mwc
