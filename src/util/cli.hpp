// Tiny command-line flag parser shared by bench and example binaries.
// Supports --name=value, --name value, and boolean --name. Unrecognized
// flags are reported; positional arguments are collected.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mwc {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& def) const;
  long long get_int_or(const std::string& name, long long def) const;
  double get_double_or(const std::string& name, double def) const;
  bool get_bool_or(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Reads an environment variable as integer, returning `def` when unset or
/// malformed. Benches use MWC_TRIALS to scale trial counts.
long long env_int_or(const char* name, long long def);

}  // namespace mwc
