// Minimal RFC-4180-ish CSV writer for experiment outputs.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace mwc {

/// Streams rows to a CSV file. Fields containing commas, quotes, or
/// newlines are quoted and inner quotes doubled.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes a header row. Usually called once, first.
  void header(const std::vector<std::string>& names);

  /// Begins accumulating a row field-by-field.
  CsvWriter& field(std::string_view value);
  CsvWriter& field(double value);
  CsvWriter& field(long long value);
  CsvWriter& field(std::size_t value);

  /// Terminates the current row.
  void end_row();

  /// Writes a whole row at once.
  void row(const std::vector<std::string>& fields);

  /// Flushes buffered output to disk.
  void flush();

 private:
  void raw_field(std::string_view value);

  std::ofstream out_;
  bool row_started_ = false;
};

/// Escapes a single CSV field (exposed for tests).
std::string csv_escape(std::string_view value);

}  // namespace mwc
