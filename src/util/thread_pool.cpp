#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mwc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
#if MWC_OBS_ENABLED
    MWC_OBS_COUNT("pool.tasks_executed");
    MWC_OBS_GAUGE_ADD("pool.queue_wait_us_total",
                      obs::now_us() - task.enqueue_us);
#endif
    {
      MWC_OBS_SCOPE("pool.task");
      task.fn();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk) {
  MWC_ASSERT(begin <= end);
  MWC_ASSERT(chunk >= 1);
  if (begin == end) return;

  std::vector<std::future<void>> futures;
  futures.reserve((end - begin + chunk - 1) / chunk);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, end);
    futures.push_back(pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // get() (not wait()) so worker exceptions propagate to the caller.
  for (auto& fut : futures) fut.get();
}

void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = begin; i < end; ++i) fn(i);
}

}  // namespace mwc
