// Deterministic, splittable pseudo-random number generation.
//
// Experiments must be reproducible across runs and across thread counts, so
// every stochastic component draws from its own `Rng` derived from a master
// seed plus a stream identifier (SplitMix64 used as a seeding hash,
// xoshiro256** as the bulk generator). Satisfies
// std::uniform_random_bit_generator, so it plugs into <random>
// distributions as well.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace mwc {

/// SplitMix64 step; also usable as a 64-bit avalanche hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mixing of two 64-bit values into one well-distributed value.
/// Used to derive independent stream seeds: mix(master_seed, stream_id).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256** 1.0 by Blackman & Vigna. Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 so any seed (including 0)
  /// yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Derives an independent generator for stream `stream_id`. Two distinct
  /// stream ids give statistically independent sequences for any seed.
  Rng(std::uint64_t seed, std::uint64_t stream_id) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) noexcept;

  /// Jump function: advances the state by 2^128 steps (for manual
  /// long-range stream separation).
  void jump() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Fisher-Yates shuffle of a random-access range using `rng`.
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Rng& rng) {
  const auto n = last - first;
  for (auto i = n - 1; i > 0; --i) {
    const auto j = rng.uniform_int(0, i);
    using std::swap;
    swap(first[i], first[j]);
  }
}

}  // namespace mwc
