#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace mwc {

CliArgs::CliArgs(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // --name value (when the next token is not itself a flag), else bool.
    if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      flags_[std::string(arg)] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name,
                            const std::string& def) const {
  const auto v = get(name);
  return v ? *v : def;
}

long long CliArgs::get_int_or(const std::string& name, long long def) const {
  const auto v = get(name);
  if (!v || v->empty()) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  return (end && *end == '\0') ? parsed : def;
}

double CliArgs::get_double_or(const std::string& name, double def) const {
  const auto v = get(name);
  if (!v || v->empty()) return def;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  return (end && *end == '\0') ? parsed : def;
}

bool CliArgs::get_bool_or(const std::string& name, bool def) const {
  const auto v = get(name);
  if (!v) return def;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  if (*v == "0" || *v == "false" || *v == "no") return false;
  return def;
}

long long env_int_or(const char* name, long long def) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  return (end && *end == '\0') ? parsed : def;
}

}  // namespace mwc
