// Aligned console tables for paper-style experiment reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mwc {

/// Accumulates rows of strings and prints them column-aligned, in the style
/// the benches use to echo each figure's series.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience row builder: formats doubles with `precision` decimals.
  void add_row_numeric(const std::vector<double>& cells, int precision = 1);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table with a header separator to `os`.
  void print(std::ostream& os) const;

  /// Renders to a string (used in tests).
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed decimals (helper shared by benches).
std::string fmt_fixed(double v, int precision = 1);

}  // namespace mwc
