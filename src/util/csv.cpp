#include "util/csv.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace mwc {

std::string csv_escape(std::string_view value) {
  const bool needs_quote =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(value);
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (char c : value) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(const std::vector<std::string>& names) { row(names); }

void CsvWriter::raw_field(std::string_view value) {
  if (row_started_) out_ << ',';
  out_ << csv_escape(value);
  row_started_ = true;
}

CsvWriter& CsvWriter::field(std::string_view value) {
  raw_field(value);
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  raw_field(buf);
  return *this;
}

CsvWriter& CsvWriter::field(long long value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  raw_field(std::string_view(buf, static_cast<std::size_t>(ptr - buf)));
  return *this;
}

CsvWriter& CsvWriter::field(std::size_t value) {
  return field(static_cast<long long>(value));
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_started_ = false;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) raw_field(f);
  end_row();
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace mwc
