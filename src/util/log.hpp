// Tiny leveled logger. Single global sink (stderr), printf-style payloads,
// thread-safe line emission. Benches set the level from --verbose flags.
#pragma once

#include <cstdarg>
#include <string_view>

namespace mwc {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the global threshold; messages above it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Optional prefix decorations for every emitted line.
struct LogFormat {
  /// Prepend seconds since process start ("12.345s").
  bool timestamps = false;
  /// Prepend a small sequential per-thread id ("T03"); ids are assigned
  /// in first-log order, not OS thread ids.
  bool thread_ids = false;
};

/// Sets/reads the global line format. Plain "[mwc LEVEL] msg" by default.
void set_log_format(LogFormat format) noexcept;
LogFormat log_format() noexcept;

/// Emits one formatted line ("[mwc LEVEL] message\n", plus any
/// set_log_format decorations) if `level` is enabled.
void log_message(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

/// Parses "error"/"warn"/"warning"/"info"/"debug" (case-insensitive).
/// Unrecognized names fall back to kInfo — chosen so a typo in
/// MWC_LOG_LEVEL degrades to *more* output rather than silently hiding
/// warnings — and emit a one-time kWarn diagnostic naming the bad value.
LogLevel parse_log_level(std::string_view name) noexcept;

#define MWC_LOG_ERROR(...) ::mwc::log_message(::mwc::LogLevel::kError, __VA_ARGS__)
#define MWC_LOG_WARN(...) ::mwc::log_message(::mwc::LogLevel::kWarn, __VA_ARGS__)
#define MWC_LOG_INFO(...) ::mwc::log_message(::mwc::LogLevel::kInfo, __VA_ARGS__)
#define MWC_LOG_DEBUG(...) ::mwc::log_message(::mwc::LogLevel::kDebug, __VA_ARGS__)

}  // namespace mwc
