// Tiny leveled logger. Single global sink (stderr), printf-style payloads,
// thread-safe line emission. Benches set the level from --verbose flags.
#pragma once

#include <cstdarg>
#include <string_view>

namespace mwc {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the global threshold; messages above it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one formatted line ("[level] message\n") if `level` is enabled.
void log_message(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

/// Parses "error"/"warn"/"info"/"debug" (case-insensitive). Returns kInfo
/// for anything unrecognized.
LogLevel parse_log_level(std::string_view name) noexcept;

#define MWC_LOG_ERROR(...) ::mwc::log_message(::mwc::LogLevel::kError, __VA_ARGS__)
#define MWC_LOG_WARN(...) ::mwc::log_message(::mwc::LogLevel::kWarn, __VA_ARGS__)
#define MWC_LOG_INFO(...) ::mwc::log_message(::mwc::LogLevel::kInfo, __VA_ARGS__)
#define MWC_LOG_DEBUG(...) ::mwc::log_message(::mwc::LogLevel::kDebug, __VA_ARGS__)

}  // namespace mwc
