// Lightweight contract-checking macros used across libmwc.
//
// MWC_ASSERT is active in all build types (the library is a research
// artifact: silent corruption is worse than an abort). MWC_DEBUG_ASSERT
// compiles away in NDEBUG builds and is meant for hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mwc::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "mwc assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace mwc::detail

#define MWC_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr)) ::mwc::detail::assert_fail(#expr, __FILE__, __LINE__,    \
                                            nullptr);                     \
  } while (0)

#define MWC_ASSERT_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) ::mwc::detail::assert_fail(#expr, __FILE__, __LINE__,    \
                                            (msg));                       \
  } while (0)

#ifdef NDEBUG
#define MWC_DEBUG_ASSERT(expr) ((void)0)
#else
#define MWC_DEBUG_ASSERT(expr) MWC_ASSERT(expr)
#endif
