#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mwc {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  // Run two SplitMix64 steps over a combination that separates (a, b) from
  // (b, a) and from (a ^ b, 0).
  std::uint64_t state = a + 0x632be59bd9b4e019ULL * (b + 1);
  std::uint64_t h = splitmix64(state);
  h ^= splitmix64(state);
  return h;
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream_id) noexcept
    : Rng(mix64(seed, stream_id)) {}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  MWC_DEBUG_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  MWC_DEBUG_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's rejection-free-in-expectation bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace mwc
