#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace mwc {

std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  MWC_ASSERT_MSG(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

void ConsoleTable::add_row_numeric(const std::vector<double>& cells,
                                   int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double c : cells) out.push_back(fmt_fixed(c, precision));
  add_row(std::move(out));
}

void ConsoleTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Right-align all but the first column (first is usually a label).
      const auto pad = widths[c] - row[c].size();
      if (c == 0) {
        os << row[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << row[c];
      }
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string ConsoleTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace mwc
