// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mwc {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (Chan et al. parallel combination).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean.
  double stderr_mean() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return n_ > 0 ? mean_ * double(n_) : 0.0; }

  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary statistics of a finished sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
  double ci95 = 0.0;  ///< 95% CI half-width of the mean
};

/// Computes a full summary (copies and sorts the data internally).
Summary summarize(std::span<const double> xs);

/// Linear-interpolation quantile of *sorted* data, q in [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Sample Pearson correlation of two equal-length series.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Arithmetic mean; 0 for empty input.
double mean_of(std::span<const double> xs);

}  // namespace mwc
