#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mwc {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_halfwidth() const noexcept {
  return 1.959963984540054 * stderr_mean();
}

double quantile_sorted(std::span<const double> sorted, double q) {
  MWC_ASSERT(!sorted.empty());
  MWC_ASSERT(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  RunningStats rs;
  for (double x : xs) rs.add(x);

  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile_sorted(sorted, 0.5);
  s.p05 = quantile_sorted(sorted, 0.05);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.ci95 = rs.ci95_halfwidth();
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  MWC_ASSERT(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace mwc
