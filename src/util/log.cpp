#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

namespace mwc {

namespace {

constexpr int kFormatTimestamps = 1;
constexpr int kFormatThreadIds = 2;

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<int> g_format{0};
std::mutex g_sink_mutex;

double seconds_since_start() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

// Small sequential ids in first-log order; stable for a thread's lifetime.
unsigned this_thread_log_id() noexcept {
  static std::atomic<unsigned> next{1};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_format(LogFormat format) noexcept {
  int bits = 0;
  if (format.timestamps) bits |= kFormatTimestamps;
  if (format.thread_ids) bits |= kFormatThreadIds;
  g_format.store(bits, std::memory_order_relaxed);
}

LogFormat log_format() noexcept {
  const int bits = g_format.load(std::memory_order_relaxed);
  LogFormat format;
  format.timestamps = (bits & kFormatTimestamps) != 0;
  format.thread_ids = (bits & kFormatThreadIds) != 0;
  return format;
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed))
    return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);

  // Optional decorations: "[mwc INFO  12.345s T03] msg".
  const int bits = g_format.load(std::memory_order_relaxed);
  char decor[64];
  std::size_t pos = 0;
  if (bits & kFormatTimestamps) {
    pos += static_cast<std::size_t>(std::snprintf(
        decor + pos, sizeof decor - pos, " %.3fs", seconds_since_start()));
  }
  if (bits & kFormatThreadIds) {
    pos += static_cast<std::size_t>(std::snprintf(
        decor + pos, sizeof decor - pos, " T%02u", this_thread_log_id()));
  }
  decor[std::min(pos, sizeof decor - 1)] = '\0';

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[mwc %s%s] %s\n", level_tag(level), decor, buf);
}

LogLevel parse_log_level(std::string_view name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "error") return LogLevel::kError;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower != "info") {
    // Warn once per process: a typo'd level should be loud, but config
    // code often re-parses the same bad value in a loop.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      MWC_LOG_WARN("unrecognized log level \"%.*s\"; falling back to info",
                   static_cast<int>(name.size()), name.data());
    }
  }
  return LogLevel::kInfo;
}

}  // namespace mwc
