#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>
#include <string>

namespace mwc {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed))
    return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[mwc %s] %s\n", level_tag(level), buf);
}

LogLevel parse_log_level(std::string_view name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "error") return LogLevel::kError;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "debug") return LogLevel::kDebug;
  return LogLevel::kInfo;
}

}  // namespace mwc
