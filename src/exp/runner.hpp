// Multi-trial experiment runner.
//
// One "data point" = `trials` independent random topologies, each simulated
// once per policy; trials run in parallel on a ThreadPool. Determinism:
// trial k derives every random stream from (seed, k), so results are
// bitwise independent of thread count and of which policies run together,
// and all policies face the *same* topologies and cycle draws (paired
// comparison, like the paper's "same 100 topologies" protocol).
//
// Policies are selected by *registry name* (see PolicyRegistry below), so
// examples, benches, and scripts/reproduce_all.sh can pick policies from
// the command line without recompiling. The runner is trial-major: each
// trial builds its topology, cycle draws, and Simulator once and runs
// every requested policy against them, so the per-network distance oracle
// and the tour-cost cache are shared across policies instead of being
// rebuilt per (policy, trial) pair.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "charging/schedule.hpp"
#include "exp/config.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace mwc::exp {

/// Builds a fresh policy instance configured from the experiment
/// parameters (e.g. the paper's greedy uses Δl = τ_min of the cycle
/// distribution).
using PolicyFactory =
    std::function<std::unique_ptr<charging::Policy>(const ExperimentConfig&)>;

/// String-keyed policy registry. Keys are the display names the paper's
/// figure legends use ("MinTotalDistance", "MinTotalDistance-var",
/// "Greedy", "PeriodicAll", "PerSensorPeriodic"); the global() instance
/// comes pre-seeded with those five built-ins, and libraries/tests may
/// add their own factories (re-registering a name replaces it).
class PolicyRegistry {
 public:
  /// The process-wide registry (thread-safe).
  static PolicyRegistry& global();

  /// Registers (or replaces) a factory under `name`.
  void add(std::string name, PolicyFactory factory);

  /// Builds a fresh policy; throws std::invalid_argument (whose message
  /// lists every registered name) on unknown names.
  std::unique_ptr<charging::Policy> make(const std::string& name,
                                         const ExperimentConfig& config) const;

  bool contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

  /// Diagnostic for unknown-name errors: names the offending key and
  /// lists every registered name.
  std::string unknown_name_message(const std::string& name) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, PolicyFactory> factories_;
};

/// Fresh policy instance from the global registry, configured from
/// `config`. Throws std::invalid_argument on unknown names.
std::unique_ptr<charging::Policy> make_policy(const std::string& name,
                                              const ExperimentConfig& config);

/// Fresh policy instance with default experiment parameters.
std::unique_ptr<charging::Policy> make_policy(const std::string& name);

/// Display name of a registered policy (registry keys coincide with
/// Policy::name(), so this validates the name and echoes it). Throws
/// std::invalid_argument on unknown names.
std::string policy_name(const std::string& name);

struct AggregateOutcome {
  std::string name;            ///< registry / display name
  Summary cost;                ///< service cost across trials
  double mean_dispatches = 0.0;
  double mean_charges = 0.0;   ///< sensor-charges per trial
  std::size_t total_dead = 0;  ///< dead sensors summed over trials (0 = ok)
  std::size_t trials = 0;
  double wall_seconds = 0.0;   ///< total simulation wall time
};

/// Simulates one trial (topology `trial_index`) of `config` under a fresh
/// policy built from the registry. Exposed for tests and examples.
sim::SimResult run_trial(const ExperimentConfig& config,
                         const std::string& policy, std::size_t trial_index);

/// Runs all `config.trials` trials of one policy. A null pool runs
/// serially.
AggregateOutcome run_policy(const ExperimentConfig& config,
                            const std::string& policy,
                            ThreadPool* pool = nullptr);

/// Runs several policies over the same trials (paired comparison).
/// Trial-major: each trial's network, cycle draws, and Simulator are
/// built once and shared by every policy, so all policies read the same
/// distance oracle and tour-cost cache.
std::vector<AggregateOutcome> run_policies(
    const ExperimentConfig& config, std::span<const std::string> policies,
    ThreadPool* pool = nullptr);

}  // namespace mwc::exp
