// Multi-trial experiment runner.
//
// One "data point" = `trials` independent random topologies, each simulated
// once per policy; trials run in parallel on a ThreadPool. Determinism:
// trial k derives every random stream from (seed, k), so results are
// bitwise independent of thread count and of which policies run together,
// and all policies face the *same* topologies and cycle draws (paired
// comparison, like the paper's "same 100 topologies" protocol).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "charging/schedule.hpp"
#include "exp/config.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace mwc::exp {

enum class PolicyKind {
  kMinTotalDistance,
  kMinTotalDistanceVar,
  kGreedy,
  kPeriodicAll,
  kPerSensorPeriodic,
};

/// Fresh policy instance of the given kind with default options.
std::unique_ptr<charging::Policy> make_policy(PolicyKind kind);

/// Fresh policy instance configured from the experiment parameters (the
/// paper's greedy uses Δl = τ_min of the cycle distribution).
std::unique_ptr<charging::Policy> make_policy(
    PolicyKind kind, const ExperimentConfig& config);

/// Display name matching the paper's figure legends.
std::string policy_name(PolicyKind kind);

struct AggregateOutcome {
  PolicyKind kind{};
  std::string name;
  Summary cost;                ///< service cost across trials
  double mean_dispatches = 0.0;
  double mean_charges = 0.0;   ///< sensor-charges per trial
  std::size_t total_dead = 0;  ///< dead sensors summed over trials (0 = ok)
  std::size_t trials = 0;
  double wall_seconds = 0.0;   ///< total simulation wall time
};

/// Simulates one trial (topology `trial_index`) of `config` under a fresh
/// policy of `kind`. Exposed for tests and examples.
sim::SimResult run_trial(const ExperimentConfig& config, PolicyKind kind,
                         std::size_t trial_index);

/// Runs all `config.trials` trials of one policy. A null pool runs
/// serially.
AggregateOutcome run_policy(const ExperimentConfig& config, PolicyKind kind,
                            ThreadPool* pool = nullptr);

/// Runs several policies over the same trials (paired comparison).
std::vector<AggregateOutcome> run_policies(const ExperimentConfig& config,
                                           std::span<const PolicyKind> kinds,
                                           ThreadPool* pool = nullptr);

}  // namespace mwc::exp
