#include "exp/runner.hpp"

#include <mutex>

#include "charging/baselines.hpp"
#include "charging/greedy.hpp"
#include "charging/min_total_distance.hpp"
#include "charging/var_heuristic.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mwc::exp {

std::unique_ptr<charging::Policy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMinTotalDistance:
      return std::make_unique<charging::MinTotalDistancePolicy>();
    case PolicyKind::kMinTotalDistanceVar:
      return std::make_unique<charging::MinTotalDistanceVarPolicy>();
    case PolicyKind::kGreedy:
      return std::make_unique<charging::GreedyPolicy>();
    case PolicyKind::kPeriodicAll:
      return std::make_unique<charging::PeriodicAllPolicy>();
    case PolicyKind::kPerSensorPeriodic:
      return std::make_unique<charging::PerSensorPeriodicPolicy>();
  }
  MWC_ASSERT_MSG(false, "unknown policy kind");
  return nullptr;
}

std::unique_ptr<charging::Policy> make_policy(
    PolicyKind kind, const ExperimentConfig& config) {
  if (kind == PolicyKind::kGreedy) {
    // The paper's greedy: request threshold Δl = τ_min of the cycle
    // distribution, requests batched at the same granularity.
    charging::GreedyOptions options;
    options.threshold = config.cycles.tau_min;
    return std::make_unique<charging::GreedyPolicy>(options);
  }
  return make_policy(kind);
}

std::string policy_name(PolicyKind kind) {
  return make_policy(kind)->name();
}

sim::SimResult run_trial(const ExperimentConfig& config, PolicyKind kind,
                         std::size_t trial_index) {
  // Stream ids: deployment uses (seed, 2k), cycles use (seed, 2k+1), so
  // topology and cycle draws are independent but shared across policies.
  Rng deploy_rng(config.seed, 2 * trial_index);
  const wsn::Network network = wsn::deploy_random(config.deployment,
                                                  deploy_rng);
  const wsn::CycleModel cycles(network, config.cycles,
                               mix64(config.seed, 2 * trial_index + 1));
  sim::Simulator simulator(network, cycles, config.sim);
  auto policy = make_policy(kind, config);
  return simulator.run(*policy);
}

AggregateOutcome run_policy(const ExperimentConfig& config, PolicyKind kind,
                            ThreadPool* pool) {
  std::vector<sim::SimResult> results(config.trials);
  const auto body = [&](std::size_t trial) {
    results[trial] = run_trial(config, kind, trial);
  };
  if (pool != nullptr && config.trials > 1) {
    parallel_for(*pool, 0, config.trials, body);
  } else {
    serial_for(0, config.trials, body);
  }

  AggregateOutcome outcome;
  outcome.kind = kind;
  outcome.name = policy_name(kind);
  outcome.trials = config.trials;
  std::vector<double> costs;
  costs.reserve(results.size());
  for (const auto& r : results) {
    costs.push_back(r.service_cost);
    outcome.mean_dispatches +=
        static_cast<double>(r.num_dispatches) / double(config.trials);
    outcome.mean_charges +=
        static_cast<double>(r.num_sensor_charges) / double(config.trials);
    outcome.total_dead += r.dead_sensors;
    outcome.wall_seconds += r.wall_seconds;
  }
  outcome.cost = summarize(costs);
  return outcome;
}

std::vector<AggregateOutcome> run_policies(const ExperimentConfig& config,
                                           std::span<const PolicyKind> kinds,
                                           ThreadPool* pool) {
  std::vector<AggregateOutcome> outcomes;
  outcomes.reserve(kinds.size());
  for (PolicyKind kind : kinds) {
    outcomes.push_back(run_policy(config, kind, pool));
  }
  return outcomes;
}

}  // namespace mwc::exp
