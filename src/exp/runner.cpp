#include "exp/runner.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "charging/baselines.hpp"
#include "charging/greedy.hpp"
#include "charging/min_total_distance.hpp"
#include "charging/var_heuristic.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mwc::exp {

PolicyRegistry& PolicyRegistry::global() {
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry();
    r->add("MinTotalDistance", [](const ExperimentConfig&) {
      return std::make_unique<charging::MinTotalDistancePolicy>();
    });
    r->add("MinTotalDistance-var", [](const ExperimentConfig&) {
      return std::make_unique<charging::MinTotalDistanceVarPolicy>();
    });
    r->add("Greedy", [](const ExperimentConfig& config) {
      // The paper's greedy: request threshold Δl = τ_min of the cycle
      // distribution, requests batched at the same granularity.
      charging::GreedyOptions options;
      options.threshold = config.cycles.tau_min;
      return std::make_unique<charging::GreedyPolicy>(options);
    });
    r->add("PeriodicAll", [](const ExperimentConfig&) {
      return std::make_unique<charging::PeriodicAllPolicy>();
    });
    r->add("PerSensorPeriodic", [](const ExperimentConfig&) {
      return std::make_unique<charging::PerSensorPeriodicPolicy>();
    });
    return r;
  }();
  return *registry;
}

void PolicyRegistry::add(std::string name, PolicyFactory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[std::move(name)] = std::move(factory);
}

std::unique_ptr<charging::Policy> PolicyRegistry::make(
    const std::string& name, const ExperimentConfig& config) const {
  PolicyFactory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  // Diagnose outside the lock: unknown_name_message() re-enters names().
  if (!factory) throw std::invalid_argument(unknown_name_message(name));
  auto policy = factory(config);
  MWC_ASSERT_MSG(policy != nullptr, "policy factory returned null");
  return policy;
}

std::string PolicyRegistry::unknown_name_message(
    const std::string& name) const {
  std::string message = "unknown policy \"" + name + "\"; registered: ";
  const auto known = names();  // sorted
  for (std::size_t i = 0; i < known.size(); ++i) {
    if (i > 0) message += ", ";
    message += known[i];
  }
  if (known.empty()) message += "(none)";
  return message;
}

bool PolicyRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.contains(name);
}

std::vector<std::string> PolicyRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<charging::Policy> make_policy(const std::string& name,
                                              const ExperimentConfig& config) {
  return PolicyRegistry::global().make(name, config);
}

std::unique_ptr<charging::Policy> make_policy(const std::string& name) {
  return make_policy(name, ExperimentConfig{});
}

std::string policy_name(const std::string& name) {
  const auto& registry = PolicyRegistry::global();
  if (!registry.contains(name)) {
    throw std::invalid_argument(registry.unknown_name_message(name));
  }
  return name;
}

sim::SimResult run_trial(const ExperimentConfig& config,
                         const std::string& policy,
                         std::size_t trial_index) {
  // Stream ids: deployment uses (seed, 2k), cycles use (seed, 2k+1), so
  // topology and cycle draws are independent but shared across policies.
  Rng deploy_rng(config.seed, 2 * trial_index);
  const wsn::Network network = wsn::deploy_random(config.deployment,
                                                  deploy_rng);
  const wsn::CycleModel cycles(network, config.cycles,
                               mix64(config.seed, 2 * trial_index + 1));
  sim::Simulator simulator(network, cycles, config.sim);
  auto p = make_policy(policy, config);
  return simulator.run(*p);
}

std::vector<AggregateOutcome> run_policies(
    const ExperimentConfig& config, std::span<const std::string> policies,
    ThreadPool* pool) {
  MWC_OBS_SCOPE("exp.run_policies");
  for (const auto& name : policies) (void)policy_name(name);  // validate

  // results[p][trial]
  std::vector<std::vector<sim::SimResult>> results(
      policies.size(), std::vector<sim::SimResult>(config.trials));

  const auto body = [&](std::size_t trial) {
    // One topology + oracle + cost cache per trial, shared by all
    // policies (paired comparison on identical geometry; identical
    // dispatch sets cost the same tours either way, so sharing the
    // cache cannot change any result).
    MWC_OBS_SCOPE("exp.trial");
    MWC_OBS_COUNT("exp.trials");
    Rng deploy_rng(config.seed, 2 * trial);
    const wsn::Network network = wsn::deploy_random(config.deployment,
                                                    deploy_rng);
    const wsn::CycleModel cycles(network, config.cycles,
                                 mix64(config.seed, 2 * trial + 1));
    sim::Simulator simulator(network, cycles, config.sim);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      auto policy = make_policy(policies[p], config);
      results[p][trial] = simulator.run(*policy);
    }
  };
  if (pool != nullptr && config.trials > 1) {
    parallel_for(*pool, 0, config.trials, body);
  } else {
    serial_for(0, config.trials, body);
  }

  std::vector<AggregateOutcome> outcomes;
  outcomes.reserve(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    AggregateOutcome outcome;
    outcome.name = policies[p];
    outcome.trials = config.trials;
    std::vector<double> costs;
    costs.reserve(results[p].size());
    for (const auto& r : results[p]) {
      costs.push_back(r.service_cost);
      outcome.mean_dispatches +=
          static_cast<double>(r.num_dispatches) / double(config.trials);
      outcome.mean_charges +=
          static_cast<double>(r.num_sensor_charges) / double(config.trials);
      outcome.total_dead += r.dead_sensors;
      outcome.wall_seconds += r.wall_seconds;
    }
    outcome.cost = summarize(costs);
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

AggregateOutcome run_policy(const ExperimentConfig& config,
                            const std::string& policy, ThreadPool* pool) {
  const std::string names[] = {policy};
  return std::move(run_policies(config, names, pool).front());
}

}  // namespace mwc::exp
