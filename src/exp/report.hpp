// Paper-figure-style reporting: one table per figure, a row per x value,
// a cost column per policy plus their ratio, with optional CSV export.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace mwc::exp {

struct SeriesPoint {
  double x = 0.0;
  std::vector<AggregateOutcome> outcomes;  ///< one per policy, fixed order
};

class FigureReport {
 public:
  /// `figure_id` like "Fig. 1(a)"; `x_label` like "n" or "tau_max";
  /// `unit_scale` divides costs before display (1000 turns metres to km).
  FigureReport(std::string figure_id, std::string title, std::string x_label,
               double unit_scale = 1000.0);

  void add_point(SeriesPoint point);

  const std::vector<SeriesPoint>& points() const noexcept { return points_; }

  /// Prints the header, the aligned series table (cost per policy, the
  /// first-vs-second ratio when >= 2 policies, dead-sensor counts if any),
  /// to stdout.
  void print() const;

  /// Writes the full per-point aggregates to `path` as CSV.
  void write_csv(const std::string& path) const;

  /// Renders the figure as an SVG line chart (one series per policy,
  /// cost in km over the swept parameter) to `path`.
  void write_svg(const std::string& path) const;

  /// Ratio of policy 0's mean cost to policy 1's at point `idx`.
  double ratio_at(std::size_t idx) const;

 private:
  std::string figure_id_;
  std::string title_;
  std::string x_label_;
  double unit_scale_;
  std::vector<SeriesPoint> points_;
};

}  // namespace mwc::exp
