// Experiment configuration: one struct tying together deployment, cycle
// model, and simulation options, with the paper's Sec. VII-A defaults.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "wsn/cycles.hpp"
#include "wsn/deployment.hpp"

namespace mwc::exp {

struct ExperimentConfig {
  wsn::DeploymentConfig deployment;   ///< n, q, field side, depot placement
  wsn::CycleModelConfig cycles;       ///< distribution, τ bounds, σ
  sim::SimOptions sim;                ///< T, ΔT, tour polish
  std::size_t trials = 100;           ///< topologies per data point
  std::uint64_t seed = 20140917;      ///< master seed (all streams derive)
  std::size_t threads = 0;            ///< worker threads; 0 = hardware
};

/// The paper's default setting: 1000 m x 1000 m field, BS at the centre,
/// q = 5 (one depot at the BS), n = 200, T = 1000, τ ∈ [1, 50], σ = 2,
/// fixed cycles (ΔT unset), 100 trials.
ExperimentConfig paper_defaults();

/// Same but with per-slot cycle redraws enabled at ΔT = 10 (the
/// variable-maximum-charging-cycle experiments, Figs. 3-6).
ExperimentConfig paper_defaults_variable();

}  // namespace mwc::exp
