#include "exp/report.hpp"

#include <cstdio>
#include <iostream>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "viz/chart.hpp"

namespace mwc::exp {

FigureReport::FigureReport(std::string figure_id, std::string title,
                           std::string x_label, double unit_scale)
    : figure_id_(std::move(figure_id)),
      title_(std::move(title)),
      x_label_(std::move(x_label)),
      unit_scale_(unit_scale) {
  MWC_ASSERT(unit_scale_ > 0.0);
}

void FigureReport::add_point(SeriesPoint point) {
  if (!points_.empty()) {
    MWC_ASSERT_MSG(point.outcomes.size() == points_.front().outcomes.size(),
                   "all series points must cover the same policies");
  }
  points_.push_back(std::move(point));
}

double FigureReport::ratio_at(std::size_t idx) const {
  const auto& p = points_.at(idx);
  MWC_ASSERT(p.outcomes.size() >= 2);
  const double denom = p.outcomes[1].cost.mean;
  return denom > 0.0 ? p.outcomes[0].cost.mean / denom : 0.0;
}

void FigureReport::print() const {
  std::cout << "=== " << figure_id_ << ": " << title_ << " ===\n";
  if (points_.empty()) {
    std::cout << "(no data)\n";
    return;
  }

  std::vector<std::string> headers{x_label_};
  const auto& first = points_.front().outcomes;
  bool any_dead = false;
  for (const auto& o : first) {
    headers.push_back(o.name + " (km)");
    headers.push_back("ci95");
  }
  if (first.size() >= 2) headers.push_back("ratio");
  for (const auto& p : points_)
    for (const auto& o : p.outcomes) any_dead |= o.total_dead > 0;
  if (any_dead) headers.push_back("dead");

  ConsoleTable table(std::move(headers));
  for (std::size_t idx = 0; idx < points_.size(); ++idx) {
    const auto& p = points_[idx];
    std::vector<std::string> row{fmt_fixed(p.x, 0)};
    std::size_t dead = 0;
    for (const auto& o : p.outcomes) {
      row.push_back(fmt_fixed(o.cost.mean / unit_scale_, 1));
      row.push_back(fmt_fixed(o.cost.ci95 / unit_scale_, 1));
      dead += o.total_dead;
    }
    if (p.outcomes.size() >= 2) row.push_back(fmt_fixed(ratio_at(idx), 3));
    if (any_dead) row.push_back(std::to_string(dead));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout.flush();
}

void FigureReport::write_svg(const std::string& path) const {
  MWC_ASSERT_MSG(!points_.empty(), "no data to plot");
  std::vector<viz::Series> series(points_.front().outcomes.size());
  for (std::size_t s = 0; s < series.size(); ++s) {
    series[s].label = points_.front().outcomes[s].name;
    for (const auto& p : points_) {
      series[s].xs.push_back(p.x);
      series[s].ys.push_back(p.outcomes[s].cost.mean / unit_scale_);
    }
  }
  viz::ChartOptions options;
  options.title = figure_id_ + ": " + title_;
  options.x_label = x_label_;
  options.y_label = "Service Cost (km)";
  viz::save_line_chart(series, options, path);
}

void FigureReport::write_csv(const std::string& path) const {
  CsvWriter csv(path);
  std::vector<std::string> header{"figure", x_label_, "policy",
                                  "cost_mean",

                                  "cost_ci95", "cost_stddev", "cost_min",
                                  "cost_max", "dispatches", "charges",
                                  "dead", "trials"};
  csv.header(header);
  for (const auto& p : points_) {
    for (const auto& o : p.outcomes) {
      csv.field(figure_id_)
          .field(p.x)
          .field(o.name)
          .field(o.cost.mean / unit_scale_)
          .field(o.cost.ci95 / unit_scale_)
          .field(o.cost.stddev / unit_scale_)
          .field(o.cost.min / unit_scale_)
          .field(o.cost.max / unit_scale_)
          .field(o.mean_dispatches)
          .field(o.mean_charges)
          .field(static_cast<long long>(o.total_dead))
          .field(static_cast<long long>(o.trials));
      csv.end_row();
    }
  }
  csv.flush();
}

}  // namespace mwc::exp
