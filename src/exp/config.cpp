#include "exp/config.hpp"

namespace mwc::exp {

ExperimentConfig paper_defaults() {
  ExperimentConfig config;
  config.deployment.n = 200;
  config.deployment.q = 5;
  config.deployment.field_side = 1000.0;
  config.deployment.depot_at_base_station = true;
  config.cycles.distribution = wsn::CycleDistribution::kLinear;
  config.cycles.tau_min = 1.0;
  config.cycles.tau_max = 50.0;
  config.cycles.sigma = 2.0;
  config.sim.horizon = 1000.0;
  config.sim.slot_length = 0.0;  // fixed cycles
  config.trials = 100;
  return config;
}

ExperimentConfig paper_defaults_variable() {
  ExperimentConfig config = paper_defaults();
  config.sim.slot_length = 10.0;  // ΔT
  return config;
}

}  // namespace mwc::exp
