#include "wsn/cycles.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mwc::wsn {

std::vector<double> CycleProcess::cycles_at_slot(std::size_t slot) const {
  std::vector<double> cycles;
  cycles.reserve(n());
  for (std::size_t i = 0; i < n(); ++i)
    cycles.push_back(cycle_at_slot(i, slot));
  return cycles;
}

CycleModel::CycleModel(const Network& network, const CycleModelConfig& config,
                       std::uint64_t seed)
    : config_(config), seed_(seed) {
  MWC_ASSERT(config.tau_min > 0.0);
  MWC_ASSERT(config.tau_max >= config.tau_min);
  MWC_ASSERT(config.sigma >= 0.0);

  means_.reserve(network.n());
  const double d_max = network.max_distance_to_base();
  for (std::size_t i = 0; i < network.n(); ++i) {
    double mean = 0.0;
    switch (config.distribution) {
      case CycleDistribution::kLinear: {
        const double frac =
            d_max > 0.0 ? network.distance_to_base(i) / d_max : 0.0;
        mean = config.tau_min + (config.tau_max - config.tau_min) * frac;
        break;
      }
      case CycleDistribution::kRandom: {
        Rng rng(seed_, mix64(0xA11CE5ULL, i));
        mean = rng.uniform(config.tau_min, config.tau_max);
        break;
      }
    }
    means_.push_back(mean);
  }
}

CycleModel CycleModel::from_means(std::vector<double> means,
                                  const CycleModelConfig& config,
                                  std::uint64_t seed) {
  MWC_ASSERT(config.tau_min > 0.0);
  MWC_ASSERT(config.tau_max >= config.tau_min);
  MWC_ASSERT(config.sigma >= 0.0);
  for (double m : means) MWC_ASSERT_MSG(m > 0.0, "means must be positive");
  CycleModel model;
  model.config_ = config;
  model.seed_ = seed;
  model.means_ = std::move(means);
  return model;
}

double CycleModel::cycle_at_slot(std::size_t i, std::size_t slot) const {
  MWC_ASSERT(i < means_.size());
  double tau = means_[i];
  if (config_.sigma > 0.0) {
    Rng rng(seed_, mix64(i + 1, slot));
    tau += rng.uniform(-config_.sigma, config_.sigma);
  }
  return std::clamp(tau, config_.tau_min, config_.tau_max);
}

}  // namespace mwc::wsn
