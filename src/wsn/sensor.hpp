// Sensor node model.
//
// The scheduling algorithms work in "cycle space": a sensor's maximum
// charging cycle τ_i is the time a full battery lasts (τ_i = B_i / ρ_i).
// The battery capacity is kept for the physical energy model
// (wsn/energy.hpp); the core algorithms only ever consume τ values.
#pragma once

#include <cstddef>

#include "geom/point.hpp"

namespace mwc::wsn {

struct Sensor {
  std::size_t id = 0;           ///< index within its network, 0..n-1
  geom::Point position;         ///< location in the field (metres)
  double battery_capacity = 1.0;  ///< B_i, normalized energy units

  bool operator==(const Sensor& other) const {
    return id == other.id && position == other.position &&
           battery_capacity == other.battery_capacity;
  }
};

}  // namespace mwc::wsn
