#include "wsn/deployment.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mwc::wsn {

namespace {

std::vector<geom::Point> random_depots(const DeploymentConfig& config,
                                       const geom::Point& base_station,
                                       Rng& rng) {
  std::vector<geom::Point> depots;
  depots.reserve(config.q);
  std::size_t remaining = config.q;
  if (config.depot_at_base_station && config.q > 0) {
    depots.push_back(base_station);
    --remaining;
  }
  for (std::size_t l = 0; l < remaining; ++l) {
    depots.push_back({rng.uniform(0.0, config.field_side),
                      rng.uniform(0.0, config.field_side)});
  }
  return depots;
}

}  // namespace

Network deploy_random(const DeploymentConfig& config, Rng& rng) {
  MWC_ASSERT(config.field_side > 0.0);
  const auto field = geom::BBox::square(config.field_side);
  const geom::Point base_station = field.center();

  std::vector<Sensor> sensors;
  sensors.reserve(config.n);
  for (std::size_t i = 0; i < config.n; ++i) {
    sensors.push_back(Sensor{
        i,
        {rng.uniform(0.0, config.field_side),
         rng.uniform(0.0, config.field_side)},
        config.battery_capacity});
  }
  auto depots = random_depots(config, base_station, rng);
  return Network(std::move(sensors), base_station, std::move(depots), field);
}

Network deploy_grid(const DeploymentConfig& config, double jitter_fraction,
                    Rng& rng) {
  MWC_ASSERT(config.field_side > 0.0);
  MWC_ASSERT(jitter_fraction >= 0.0 && jitter_fraction <= 0.5);
  const auto field = geom::BBox::square(config.field_side);
  const geom::Point base_station = field.center();

  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(config.n))));
  const auto rows_needed =
      (config.n + cols - 1) / cols;
  const double dx = config.field_side / static_cast<double>(cols);
  const double dy = config.field_side / static_cast<double>(rows_needed);

  std::vector<Sensor> sensors;
  sensors.reserve(config.n);
  for (std::size_t i = 0; i < config.n; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    const double cx = (static_cast<double>(c) + 0.5) * dx;
    const double cy = (static_cast<double>(r) + 0.5) * dy;
    const double jx = rng.uniform(-jitter_fraction, jitter_fraction) * dx;
    const double jy = rng.uniform(-jitter_fraction, jitter_fraction) * dy;
    sensors.push_back(Sensor{i, {cx + jx, cy + jy}, config.battery_capacity});
  }
  auto depots = random_depots(config, base_station, rng);
  return Network(std::move(sensors), base_station, std::move(depots), field);
}

}  // namespace mwc::wsn
