// Exponentially-weighted moving-average energy prediction (Sec. VI-A):
//   ρ̂_i(t+1) = γ ρ_i(t) + (1-γ) ρ̂_i(t)
// The base station uses the predicted rate to estimate each sensor's
// residual lifetime l̂_i(t) = re_i(t)/ρ̂_i(t+1) and maximum charging cycle
// τ̂_i(t) = B_i/ρ̂_i(t+1).
#pragma once

#include <cstddef>
#include <vector>

namespace mwc::wsn {

class EwmaPredictor {
 public:
  /// gamma in (0, 1): weight of the newest observation.
  EwmaPredictor(double gamma, double initial_rate);

  /// Feeds the monitored rate ρ(t); updates ρ̂(t+1).
  void observe(double rate);

  double predicted_rate() const noexcept { return predicted_; }

  /// τ̂ = B / ρ̂ (infinite for non-positive predictions).
  double predicted_cycle(double battery_capacity) const;

  /// l̂ = residual_energy / ρ̂.
  double predicted_residual_lifetime(double residual_energy) const;

  double gamma() const noexcept { return gamma_; }

 private:
  double gamma_;
  double predicted_;
};

/// One EWMA predictor per sensor, with change-detection: `significant_change`
/// mirrors the paper's per-sensor variation threshold — the sensor only
/// reports to the base station when its predicted cycle moved by more than
/// `threshold` (relative).
class FleetPredictor {
 public:
  FleetPredictor(double gamma, std::vector<double> initial_rates,
                 double report_threshold = 0.0);

  std::size_t size() const noexcept { return predictors_.size(); }

  /// Feeds the current rates; returns ids of sensors whose predicted cycle
  /// changed by more than the report threshold since their last report.
  /// Throws std::invalid_argument when rates.size() != size().
  std::vector<std::size_t> observe(const std::vector<double>& rates);

  double predicted_rate(std::size_t i) const;
  double predicted_cycle(std::size_t i, double battery_capacity) const;

 private:
  std::vector<EwmaPredictor> predictors_;
  std::vector<double> last_reported_rate_;
  double report_threshold_;
};

}  // namespace mwc::wsn
