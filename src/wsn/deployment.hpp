// Random network deployment following the paper's experimental setup
// (Sec. VII-A): sensors uniform in a square field, base station at the
// centre, q depots with one optionally co-located with the base station
// (the paper co-locates one because the most energy-hungry sensors cluster
// around the base station) and the rest uniform random.
#pragma once

#include <cstddef>

#include "util/rng.hpp"
#include "wsn/network.hpp"

namespace mwc::wsn {

struct DeploymentConfig {
  std::size_t n = 200;             ///< number of sensors
  std::size_t q = 5;               ///< number of depots / mobile chargers
  double field_side = 1000.0;      ///< square field side length (metres)
  bool depot_at_base_station = true;  ///< co-locate depot 0 with the BS
  double battery_capacity = 1.0;   ///< B_i for every sensor
};

/// Deploys a random network; consumes values from `rng` (callers derive a
/// dedicated stream per topology for reproducibility).
Network deploy_random(const DeploymentConfig& config, Rng& rng);

/// Deploys sensors on a jittered grid (used by examples that want an
/// even-coverage monitoring layout rather than a uniform-random one).
Network deploy_grid(const DeploymentConfig& config, double jitter_fraction,
                    Rng& rng);

}  // namespace mwc::wsn
