// Trace-driven charging cycles: replay measured (or exported) per-slot
// cycle values instead of a synthetic process. Bridges the simulator to
// real deployments — log each sensor's observed maximum charging cycle
// per slot into a CSV, then re-run any scheduling policy against the
// exact same history.
//
// CSV format: one row per slot, n comma-separated positive cycle values
// per row; a '#'-prefixed first line is treated as a header and skipped.
// Slots beyond the trace hold the last row's values.
#pragma once

#include <string>
#include <vector>

#include "wsn/cycles.hpp"

namespace mwc::wsn {

class TraceCycleProcess final : public CycleProcess {
 public:
  /// `rows[s][i]` = cycle of sensor i during slot s. All rows must have
  /// equal size and strictly positive entries; at least one row.
  explicit TraceCycleProcess(std::vector<std::vector<double>> rows);

  std::size_t n() const override;
  double cycle_at_slot(std::size_t i, std::size_t slot) const override;

  /// Number of recorded slots (access beyond holds the last row).
  std::size_t recorded_slots() const noexcept { return rows_.size(); }

 private:
  std::vector<std::vector<double>> rows_;
};

/// Parses the CSV format above. Throws std::runtime_error on unreadable
/// files or malformed content (ragged rows, non-positive values).
TraceCycleProcess load_cycle_trace(const std::string& path);

/// Writes `process`'s first `slots` slots in the CSV format above
/// (header line included), e.g. to snapshot a synthetic run for replay.
void save_cycle_trace(const CycleProcess& process, std::size_t slots,
                      const std::string& path);

}  // namespace mwc::wsn
