// Maximum-charging-cycle models (Sec. VII-A of the paper).
//
// Two distributions:
//   * linear — a sensor's mean cycle τ̄_i grows linearly with its distance
//     to the base station (sensors near the BS relay traffic for everyone
//     and drain fastest): τ̄_i = τ_min + (τ_max - τ_min) · d_i / d_max.
//   * random — τ̄_i drawn uniformly from [τ_min, τ_max] once per topology
//     (multimedia WSNs, where load is not distance-correlated).
//
// The realized cycle for time slot s is τ̄_i plus uniform jitter ±σ,
// clamped back into [τ_min, τ_max]. σ = 0 makes cycles exactly the means.
// Draws are a pure function of (seed, sensor, slot): random access, no
// state, bitwise reproducible regardless of evaluation order or threading.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "wsn/network.hpp"

namespace mwc::wsn {

/// Abstract source of per-slot maximum charging cycles. The simulator
/// consumes this interface, so alternative dynamics (the jittered
/// stationary model below, the Markov storm process in wsn/storm.hpp,
/// trace replays, ...) plug in interchangeably.
class CycleProcess {
 public:
  virtual ~CycleProcess() = default;

  /// Number of sensors covered.
  virtual std::size_t n() const = 0;

  /// Realized cycle of sensor i during slot `slot`; must be positive.
  virtual double cycle_at_slot(std::size_t i, std::size_t slot) const = 0;

  /// All n cycles for one slot (default loops over cycle_at_slot).
  virtual std::vector<double> cycles_at_slot(std::size_t slot) const;
};

enum class CycleDistribution { kLinear, kRandom };

struct CycleModelConfig {
  CycleDistribution distribution = CycleDistribution::kLinear;
  double tau_min = 1.0;
  double tau_max = 50.0;
  double sigma = 2.0;  ///< per-slot jitter half-width
};

class CycleModel final : public CycleProcess {
 public:
  /// `seed` scopes all draws; two models with equal (network, config,
  /// seed) produce identical cycles.
  CycleModel(const Network& network, const CycleModelConfig& config,
             std::uint64_t seed);

  /// Builds a model from explicit per-sensor mean cycles (e.g. cycles
  /// derived from a routing-tree energy profile) instead of a synthetic
  /// distribution. Jitter/clamping still follow `config` (cycles are
  /// clamped to [tau_min, tau_max]; widen the band to cover the means).
  static CycleModel from_means(std::vector<double> means,
                               const CycleModelConfig& config,
                               std::uint64_t seed);

  const CycleModelConfig& config() const noexcept { return config_; }
  std::size_t n() const override { return means_.size(); }

  /// Mean (slot-independent) cycle of sensor i.
  double mean_cycle(std::size_t i) const { return means_[i]; }

  /// Realized cycle of sensor i during slot `slot`. Always within
  /// [tau_min, tau_max].
  double cycle_at_slot(std::size_t i, std::size_t slot) const override;

  /// Fixed-cycle assignment used by the fixed-τ experiments: slot 0 draws.
  std::vector<double> fixed_cycles() const { return cycles_at_slot(0); }

 private:
  CycleModel() = default;

  CycleModelConfig config_;
  std::uint64_t seed_ = 0;
  std::vector<double> means_;
};

}  // namespace mwc::wsn
