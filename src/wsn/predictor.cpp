#include "wsn/predictor.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/assert.hpp"

namespace mwc::wsn {

EwmaPredictor::EwmaPredictor(double gamma, double initial_rate)
    : gamma_(gamma), predicted_(initial_rate) {
  MWC_ASSERT(gamma > 0.0 && gamma < 1.0);
}

void EwmaPredictor::observe(double rate) {
  predicted_ = gamma_ * rate + (1.0 - gamma_) * predicted_;
}

double EwmaPredictor::predicted_cycle(double battery_capacity) const {
  if (predicted_ <= 0.0) return std::numeric_limits<double>::infinity();
  return battery_capacity / predicted_;
}

double EwmaPredictor::predicted_residual_lifetime(
    double residual_energy) const {
  if (predicted_ <= 0.0) return std::numeric_limits<double>::infinity();
  return residual_energy / predicted_;
}

FleetPredictor::FleetPredictor(double gamma,
                               std::vector<double> initial_rates,
                               double report_threshold)
    : report_threshold_(report_threshold) {
  MWC_ASSERT(report_threshold >= 0.0);
  predictors_.reserve(initial_rates.size());
  last_reported_rate_ = initial_rates;
  for (double r : initial_rates) predictors_.emplace_back(gamma, r);
}

std::vector<std::size_t> FleetPredictor::observe(
    const std::vector<double>& rates) {
  // A hard error, not an assert: observation vectors arrive from the
  // network (stream-session frames), and release builds compile
  // MWC_ASSERT out — a mismatched length would index out of bounds.
  if (rates.size() != predictors_.size())
    throw std::invalid_argument(
        "FleetPredictor::observe: " + std::to_string(rates.size()) +
        " rates for a fleet of " + std::to_string(predictors_.size()));
  std::vector<std::size_t> reporters;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    predictors_[i].observe(rates[i]);
    const double predicted = predictors_[i].predicted_rate();
    const double baseline = last_reported_rate_[i];
    const double rel_change =
        baseline > 0.0 ? std::abs(predicted - baseline) / baseline
                       : std::numeric_limits<double>::infinity();
    if (rel_change > report_threshold_ ||
        (report_threshold_ == 0.0 && predicted != baseline)) {
      reporters.push_back(i);
      last_reported_rate_[i] = predicted;
    }
  }
  return reporters;
}

double FleetPredictor::predicted_rate(std::size_t i) const {
  return predictors_[i].predicted_rate();
}

double FleetPredictor::predicted_cycle(std::size_t i,
                                       double battery_capacity) const {
  return predictors_[i].predicted_cycle(battery_capacity);
}

}  // namespace mwc::wsn
