#include "wsn/energy.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "geom/point.hpp"
#include "util/assert.hpp"

namespace mwc::wsn {

EnergyProfile compute_energy_profile(const Network& network,
                                     const EnergyModelConfig& config) {
  const std::size_t n = network.n();
  EnergyProfile profile;
  profile.route_parent.assign(n, EnergyProfile::kToBaseStation);
  profile.hops.assign(n, 0);
  profile.load.assign(n, 0.0);
  profile.rate.assign(n, 0.0);
  profile.cycle.assign(n, 0.0);
  if (n == 0) return profile;

  // Dijkstra from the base station over the unit-disk graph. Node n is the
  // base station.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n + 1, kInf);
  std::vector<std::size_t> parent(n + 1, EnergyProfile::kToBaseStation);
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[n] = 0.0;
  heap.emplace(0.0, n);

  const auto& pts = network.sensor_points();
  const auto pos = [&](std::size_t v) -> const geom::Point& {
    return v == n ? network.base_station() : pts[v];
  };

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u) continue;
      const double w = geom::distance(pos(u), pos(v));
      if (w > config.comm_range) continue;
      if (d + w < dist[v]) {
        dist[v] = d + w;
        parent[v] = u;
        heap.emplace(dist[v], v);
      }
    }
  }

  // Unreachable nodes: direct long-range uplink (or hard failure).
  for (std::size_t v = 0; v < n; ++v) {
    if (dist[v] == kInf) {
      MWC_ASSERT_MSG(config.allow_direct_fallback,
                     "communication graph is disconnected");
      parent[v] = n;
      dist[v] = geom::distance(pts[v], network.base_station());
    }
  }

  // Hop counts and topological order (children before parents for load
  // accumulation). Sort by descending distance — a child is always
  // strictly farther than its parent on a shortest-path tree.
  std::vector<std::size_t> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return dist[a] > dist[b];
  });

  for (std::size_t v = 0; v < n; ++v) {
    profile.route_parent[v] =
        parent[v] == n ? EnergyProfile::kToBaseStation : parent[v];
    std::size_t hops = 0;
    for (std::size_t u = v; parent[u] != EnergyProfile::kToBaseStation &&
                            u != n;) {
      u = parent[u];
      ++hops;
      if (u == n) break;
    }
    profile.hops[v] = std::max<std::size_t>(hops, 1);
    profile.load[v] = config.gen_rate;  // own data
  }

  for (std::size_t v : order) {
    const std::size_t p = parent[v];
    if (p != EnergyProfile::kToBaseStation && p != n) {
      profile.load[p] += profile.load[v];
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    const double received = profile.load[v] - config.gen_rate;  // relayed in
    profile.rate[v] = profile.load[v] * config.e_tx +
                      received * config.e_rx +
                      config.gen_rate * config.e_sense;
    const double capacity = network.sensor(v).battery_capacity;
    profile.cycle[v] = profile.rate[v] > 0.0
                           ? capacity / profile.rate[v]
                           : std::numeric_limits<double>::infinity();
  }
  return profile;
}

Battery::Battery(double capacity) : capacity_(capacity), level_(capacity) {
  MWC_ASSERT(capacity > 0.0);
}

double Battery::discharge(double rate, double duration) {
  MWC_ASSERT(rate >= 0.0 && duration >= 0.0);
  const double requested = rate * duration;
  const double consumed = std::min(requested, level_);
  level_ -= consumed;
  return consumed;
}

double Battery::recharge_full() {
  const double added = capacity_ - level_;
  level_ = capacity_;
  return added;
}

double Battery::lifetime_at(double rate) const {
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return level_ / rate;
}

}  // namespace mwc::wsn
