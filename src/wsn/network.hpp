// The wireless sensor network: n sensors, one stationary base station, and
// q depots each housing one mobile charger (Sec. III-A of the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/point.hpp"
#include "wsn/sensor.hpp"

namespace mwc::wsn {

class Network {
 public:
  Network() = default;

  /// Sensor ids must equal their index. At least one depot is required for
  /// any charging to happen; an empty depot list is allowed only for
  /// partially-constructed test fixtures.
  Network(std::vector<Sensor> sensors, geom::Point base_station,
          std::vector<geom::Point> depots, geom::BBox field);

  std::size_t n() const noexcept { return sensors_.size(); }
  std::size_t q() const noexcept { return depots_.size(); }

  const std::vector<Sensor>& sensors() const noexcept { return sensors_; }
  const Sensor& sensor(std::size_t i) const { return sensors_[i]; }
  const geom::Point& base_station() const noexcept { return base_station_; }
  const std::vector<geom::Point>& depots() const noexcept { return depots_; }
  const geom::BBox& field() const noexcept { return field_; }

  /// Positions of all sensors, indexed by sensor id.
  const std::vector<geom::Point>& sensor_points() const noexcept {
    return sensor_points_;
  }

  /// Distance from sensor i to the base station (cached).
  double distance_to_base(std::size_t i) const { return dist_to_base_[i]; }

  /// Largest sensor-to-base-station distance (0 when there are no sensors).
  double max_distance_to_base() const noexcept { return max_dist_to_base_; }

 private:
  std::vector<Sensor> sensors_;
  geom::Point base_station_;
  std::vector<geom::Point> depots_;
  geom::BBox field_;
  std::vector<geom::Point> sensor_points_;
  std::vector<double> dist_to_base_;
  double max_dist_to_base_ = 0.0;
};

}  // namespace mwc::wsn
