// Markov-modulated charging cycles: the "storm" workload process.
//
// The paper motivates variable cycles with flood-detection networks whose
// sampling rates jump when a storm passes (Sec. II: "high data sampling
// rates ... when there is a storm"). This process models exactly that:
// each sensor carries a two-state Markov chain evolving per slot —
// *calm*, where its cycle equals the stationary mean (optionally
// jittered), and *storm*, where consumption is `stress_factor` times
// higher so the cycle divides by it. Storm entry can be spatially
// correlated (a storm cell sweeps a region) via a shared regional chain.
//
// Unlike CycleModel's stateless hash-based draws, a Markov chain's state
// depends on its history; states are therefore computed iteratively and
// memoized per sensor. One instance serves one simulation trial; memoized
// access is not thread-safe across concurrent callers (each trial owns
// its process, which is how the experiment runner uses it).
#pragma once

#include <cstdint>
#include <vector>

#include "wsn/cycles.hpp"
#include "wsn/network.hpp"

namespace mwc::wsn {

struct StormConfig {
  double tau_min = 1.0;
  double tau_max = 50.0;
  /// Stationary (calm) cycle layout across the field.
  CycleDistribution distribution = CycleDistribution::kLinear;
  /// Per-slot probability that a calm sensor enters a storm.
  double p_enter = 0.05;
  /// Per-slot probability that a storming sensor calms down.
  double p_exit = 0.25;
  /// Consumption multiplier during a storm (cycle divides by this).
  double stress_factor = 4.0;
  /// If true, one regional chain drives all sensors within the storm
  /// radius of a moving storm centre instead of independent chains.
  bool regional = false;
  double storm_radius = 300.0;  ///< metres, regional mode only
};

class StormCycleProcess final : public CycleProcess {
 public:
  StormCycleProcess(const Network& network, const StormConfig& config,
                    std::uint64_t seed);

  std::size_t n() const override { return means_.size(); }
  double cycle_at_slot(std::size_t i, std::size_t slot) const override;

  /// True if sensor i is storming during `slot`.
  bool storming(std::size_t i, std::size_t slot) const;

  /// Fraction of sensors storming during `slot` (observability helper).
  double storm_fraction(std::size_t slot) const;

  double mean_cycle(std::size_t i) const { return means_[i]; }
  const StormConfig& config() const noexcept { return config_; }

 private:
  void ensure_slots(std::size_t slot) const;

  StormConfig config_;
  std::uint64_t seed_;
  std::vector<double> means_;
  std::vector<geom::Point> positions_;
  geom::BBox field_;
  // states_[slot][sensor]: 1 = storm. Grown lazily.
  mutable std::vector<std::vector<std::uint8_t>> states_;
};

}  // namespace mwc::wsn
