#include "wsn/network.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mwc::wsn {

Network::Network(std::vector<Sensor> sensors, geom::Point base_station,
                 std::vector<geom::Point> depots, geom::BBox field)
    : sensors_(std::move(sensors)),
      base_station_(base_station),
      depots_(std::move(depots)),
      field_(field) {
  sensor_points_.reserve(sensors_.size());
  dist_to_base_.reserve(sensors_.size());
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    MWC_ASSERT_MSG(sensors_[i].id == i, "sensor ids must equal their index");
    sensor_points_.push_back(sensors_[i].position);
    const double d = geom::distance(sensors_[i].position, base_station_);
    dist_to_base_.push_back(d);
    max_dist_to_base_ = std::max(max_dist_to_base_, d);
  }
}

}  // namespace mwc::wsn
