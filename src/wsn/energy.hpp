// Physical energy model: multihop routing loads and consumption rates.
//
// The paper's *linear* cycle distribution is motivated by relay traffic:
// sensors near the base station forward everyone else's data and drain
// fastest. This module makes that concrete — it builds a shortest-path
// routing tree toward the base station over a unit-disk communication
// graph, accumulates each node's relayed data volume, converts load to an
// energy consumption rate, and derives the implied maximum charging cycle
// τ_i = B_i / ρ_i. The flood-monitoring example feeds these derived cycles
// into the schedulers instead of the synthetic linear model.
#pragma once

#include <cstddef>
#include <vector>

#include "wsn/network.hpp"

namespace mwc::wsn {

struct EnergyModelConfig {
  double comm_range = 150.0;   ///< unit-disk communication radius (m)
  double gen_rate = 1.0;       ///< data generated per sensor per time unit
  double e_tx = 1.0e-3;        ///< energy per data unit transmitted
  double e_rx = 0.5e-3;        ///< energy per data unit received
  double e_sense = 0.2e-3;     ///< energy per data unit sensed/processed
  /// Nodes with no multihop route fall back to a direct (long-range) link
  /// to the base station when true; otherwise route construction fails.
  bool allow_direct_fallback = true;
};

struct EnergyProfile {
  /// Routing parent of each sensor; kToBaseStation when it uplinks
  /// directly to the base station.
  std::vector<std::size_t> route_parent;
  /// Hop count to the base station.
  std::vector<std::size_t> hops;
  /// Total data volume through each sensor per time unit (own + relayed).
  std::vector<double> load;
  /// Energy consumption rate ρ_i per time unit.
  std::vector<double> rate;
  /// Implied maximum charging cycle τ_i = B_i / ρ_i.
  std::vector<double> cycle;

  static constexpr std::size_t kToBaseStation = static_cast<std::size_t>(-1);
};

/// Computes the routing tree and per-sensor rates/cycles. Throws (asserts)
/// if the graph is disconnected and `allow_direct_fallback` is false.
EnergyProfile compute_energy_profile(const Network& network,
                                     const EnergyModelConfig& config);

/// A rechargeable battery with clamped charge/discharge bookkeeping; the
/// simulator's normalized residual-life accounting is validated against
/// this explicit model in tests.
class Battery {
 public:
  explicit Battery(double capacity);

  double capacity() const noexcept { return capacity_; }
  double level() const noexcept { return level_; }
  double fraction() const noexcept { return level_ / capacity_; }
  bool depleted() const noexcept { return level_ <= 0.0; }

  /// Drains `rate * duration`, clamping at zero. Returns the energy
  /// actually consumed.
  double discharge(double rate, double duration);

  /// Recharges to full (the paper's point-to-point charging fills the
  /// battery completely). Returns the energy added.
  double recharge_full();

  /// Remaining lifetime at the given constant rate; +inf for rate <= 0.
  double lifetime_at(double rate) const;

 private:
  double capacity_;
  double level_;
};

}  // namespace mwc::wsn
