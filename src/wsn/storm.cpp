#include "wsn/storm.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mwc::wsn {

StormCycleProcess::StormCycleProcess(const Network& network,
                                     const StormConfig& config,
                                     std::uint64_t seed)
    : config_(config),
      seed_(seed),
      positions_(network.sensor_points()),
      field_(network.field()) {
  MWC_ASSERT(config.tau_min > 0.0);
  MWC_ASSERT(config.tau_max >= config.tau_min);
  MWC_ASSERT(config.p_enter >= 0.0 && config.p_enter <= 1.0);
  MWC_ASSERT(config.p_exit >= 0.0 && config.p_exit <= 1.0);
  MWC_ASSERT(config.stress_factor >= 1.0);

  means_.reserve(network.n());
  const double d_max = network.max_distance_to_base();
  for (std::size_t i = 0; i < network.n(); ++i) {
    double mean = 0.0;
    switch (config.distribution) {
      case CycleDistribution::kLinear: {
        const double frac =
            d_max > 0.0 ? network.distance_to_base(i) / d_max : 0.0;
        mean = config.tau_min + (config.tau_max - config.tau_min) * frac;
        break;
      }
      case CycleDistribution::kRandom: {
        Rng rng(seed_, mix64(0x5707D1ULL, i));
        mean = rng.uniform(config.tau_min, config.tau_max);
        break;
      }
    }
    means_.push_back(mean);
  }
  // Slot 0: everyone calm.
  states_.emplace_back(network.n(), std::uint8_t{0});
}

void StormCycleProcess::ensure_slots(std::size_t slot) const {
  while (states_.size() <= slot) {
    const std::size_t s = states_.size();
    const auto& prev = states_.back();
    std::vector<std::uint8_t> next(prev.size(), 0);

    if (config_.regional) {
      // A storm cell wanders across the field (deterministic per seed):
      // everyone within storm_radius of the centre storms.
      Rng rng(seed_, mix64(0xCE11ULL, s));
      const geom::Point center{
          field_.lo.x + rng.uniform() * field_.width(),
          field_.lo.y + rng.uniform() * field_.height()};
      const bool active = rng.uniform() < 0.5;  // storm present this slot?
      for (std::size_t i = 0; i < next.size(); ++i) {
        next[i] = active && geom::distance(positions_[i], center) <=
                                config_.storm_radius
                      ? 1
                      : 0;
      }
    } else {
      for (std::size_t i = 0; i < next.size(); ++i) {
        Rng rng(seed_, mix64(i + 1, s));
        if (prev[i]) {
          next[i] = rng.uniform() < config_.p_exit ? 0 : 1;
        } else {
          next[i] = rng.uniform() < config_.p_enter ? 1 : 0;
        }
      }
    }
    states_.push_back(std::move(next));
  }
}

bool StormCycleProcess::storming(std::size_t i, std::size_t slot) const {
  MWC_ASSERT(i < means_.size());
  ensure_slots(slot);
  return states_[slot][i] != 0;
}

double StormCycleProcess::cycle_at_slot(std::size_t i,
                                        std::size_t slot) const {
  MWC_ASSERT(i < means_.size());
  ensure_slots(slot);
  double tau = means_[i];
  if (states_[slot][i]) tau /= config_.stress_factor;
  return std::clamp(tau, config_.tau_min, config_.tau_max);
}

double StormCycleProcess::storm_fraction(std::size_t slot) const {
  ensure_slots(slot);
  if (means_.empty()) return 0.0;
  std::size_t count = 0;
  for (std::uint8_t s : states_[slot]) count += s;
  return static_cast<double>(count) / static_cast<double>(means_.size());
}

}  // namespace mwc::wsn
