#include "wsn/trace.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace mwc::wsn {

TraceCycleProcess::TraceCycleProcess(std::vector<std::vector<double>> rows)
    : rows_(std::move(rows)) {
  MWC_ASSERT_MSG(!rows_.empty(), "trace needs at least one slot");
  const std::size_t width = rows_.front().size();
  MWC_ASSERT_MSG(width > 0, "trace needs at least one sensor");
  for (const auto& row : rows_) {
    MWC_ASSERT_MSG(row.size() == width, "ragged trace rows");
    for (double tau : row)
      MWC_ASSERT_MSG(tau > 0.0, "cycles must be positive");
  }
}

std::size_t TraceCycleProcess::n() const { return rows_.front().size(); }

double TraceCycleProcess::cycle_at_slot(std::size_t i,
                                        std::size_t slot) const {
  MWC_DEBUG_ASSERT(i < n());
  const std::size_t s = slot < rows_.size() ? slot : rows_.size() - 1;
  return rows_[s][i];
}

TraceCycleProcess load_cycle_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_cycle_trace: cannot open " + path);

  std::vector<std::vector<double>> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // CRLF-agnostic: getline on a Windows-authored file leaves the '\r'
    // on every line (and a trailing blank line reads as a lone "\r").
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') continue;  // header/comment
    std::vector<double> row;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      char* end = nullptr;
      const double value = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || value <= 0.0) {
        throw std::runtime_error("load_cycle_trace: bad value '" + field +
                                 "' at line " + std::to_string(line_no));
      }
      row.push_back(value);
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      throw std::runtime_error("load_cycle_trace: ragged row at line " +
                               std::to_string(line_no));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty())
    throw std::runtime_error("load_cycle_trace: no data rows in " + path);
  return TraceCycleProcess(std::move(rows));
}

void save_cycle_trace(const CycleProcess& process, std::size_t slots,
                      const std::string& path) {
  MWC_ASSERT(slots >= 1);
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("save_cycle_trace: cannot open " + path);
  // Header written raw (CSV quoting would hide the '#' comment marker).
  out << "# mwc cycle trace: rows = slots; columns = sensors\n";
  char buf[64];
  for (std::size_t s = 0; s < slots; ++s) {
    for (std::size_t i = 0; i < process.n(); ++i) {
      std::snprintf(buf, sizeof buf, "%.9g", process.cycle_at_slot(i, s));
      out << (i == 0 ? "" : ",") << buf;
    }
    out << '\n';
  }
}

}  // namespace mwc::wsn
