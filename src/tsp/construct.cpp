#include "tsp/construct.hpp"

#include <algorithm>
#include <limits>

#include "graph/dsu.hpp"
#include "graph/euler.hpp"
#include "util/assert.hpp"

namespace mwc::tsp {

Tour tree_to_tour(std::span<const graph::Edge> tree_edges, std::size_t root) {
  const auto walk = graph::doubled_tree_circuit(tree_edges, root);
  return Tour(graph::shortcut_closed_walk(walk));
}

Tour double_tree_tour(const DistanceView& distances, std::size_t start) {
  const std::size_t n = distances.size();
  if (n == 0) return Tour{};
  MWC_ASSERT(start < n);
  if (n == 1) return Tour({start});

  const auto mst = graph::prim_mst_with(
      n, [&](std::size_t i, std::size_t j) { return distances(i, j); },
      start);
  return tree_to_tour(mst.edges, start);
}

Tour double_tree_tour(std::span<const geom::Point> points, std::size_t start) {
  return double_tree_tour(DistanceView::direct(points), start);
}

Tour christofides_tour(const DistanceView& distances, std::size_t start) {
  const std::size_t n = distances.size();
  if (n == 0) return Tour{};
  MWC_ASSERT(start < n);
  if (n == 1) return Tour({start});
  if (n == 2) return Tour({start, start == 0 ? std::size_t{1} : 0});

  const auto mst = graph::prim_mst_with(
      n, [&](std::size_t i, std::size_t j) { return distances(i, j); },
      start);

  // Odd-degree vertices of the MST (always an even count).
  std::vector<int> degree(n, 0);
  for (const auto& e : mst.edges) {
    ++degree[e.u];
    ++degree[e.v];
  }
  std::vector<std::size_t> odd;
  for (std::size_t v = 0; v < n; ++v)
    if (degree[v] % 2 != 0) odd.push_back(v);
  MWC_DEBUG_ASSERT(odd.size() % 2 == 0);

  // Greedy matching on the odd set: repeatedly take the globally
  // shortest pair of unmatched odd vertices.
  struct Pair {
    std::size_t a, b;
    double w;
  };
  std::vector<Pair> pairs;
  pairs.reserve(odd.size() * (odd.size() - 1) / 2);
  for (std::size_t i = 0; i < odd.size(); ++i)
    for (std::size_t j = i + 1; j < odd.size(); ++j)
      pairs.push_back({odd[i], odd[j], distances(odd[i], odd[j])});
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& x, const Pair& y) { return x.w < y.w; });

  std::vector<graph::Edge> multigraph = mst.edges;
  std::vector<bool> matched(n, false);
  std::size_t remaining = odd.size();
  for (const Pair& p : pairs) {
    if (remaining == 0) break;
    if (matched[p.a] || matched[p.b]) continue;
    matched[p.a] = matched[p.b] = true;
    multigraph.push_back(graph::Edge{p.a, p.b, p.w});
    remaining -= 2;
  }
  MWC_DEBUG_ASSERT(remaining == 0);

  // All degrees are now even; Euler tour + shortcut.
  const auto walk = graph::eulerian_circuit(multigraph, start);
  return Tour(graph::shortcut_closed_walk(walk));
}

Tour christofides_tour(std::span<const geom::Point> points,
                       std::size_t start) {
  return christofides_tour(DistanceView::direct(points), start);
}

Tour nearest_neighbor_tour(std::span<const geom::Point> points,
                           std::size_t start) {
  const std::size_t n = points.size();
  if (n == 0) return Tour{};
  MWC_ASSERT(start < n);

  std::vector<bool> visited(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::size_t current = start;
  visited[current] = true;
  order.push_back(current);
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t best = n;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (visited[v]) continue;
      const double d2 = geom::distance2(points[current], points[v]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = v;
      }
    }
    visited[best] = true;
    order.push_back(best);
    current = best;
  }
  return Tour(std::move(order));
}

Tour greedy_edge_tour(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  if (n == 0) return Tour{};
  if (n == 1) return Tour({0});
  if (n == 2) return Tour({0, 1});

  struct E {
    std::size_t u, v;
    double w;
  };
  std::vector<E> edges;
  edges.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      edges.push_back({i, j, geom::distance(points[i], points[j])});
  std::sort(edges.begin(), edges.end(),
            [](const E& a, const E& b) { return a.w < b.w; });

  std::vector<int> degree(n, 0);
  graph::Dsu dsu(n);
  std::vector<std::vector<std::size_t>> adj(n);
  std::size_t accepted = 0;
  for (const E& e : edges) {
    if (accepted == n) break;
    if (degree[e.u] >= 2 || degree[e.v] >= 2) continue;
    const bool closes_cycle = dsu.connected(e.u, e.v);
    if (closes_cycle && accepted + 1 != n) continue;  // only the final edge may
    dsu.unite(e.u, e.v);
    ++degree[e.u];
    ++degree[e.v];
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
    ++accepted;
  }
  MWC_ASSERT_MSG(accepted == n, "greedy edge construction failed to close");

  // Walk the Hamiltonian cycle.
  std::vector<std::size_t> order;
  order.reserve(n);
  std::size_t prev = n, cur = 0;
  for (std::size_t step = 0; step < n; ++step) {
    order.push_back(cur);
    const std::size_t next =
        (adj[cur][0] != prev || adj[cur].size() == 1) ? adj[cur][0]
                                                      : adj[cur][1];
    prev = cur;
    cur = next;
  }
  return Tour(std::move(order));
}

}  // namespace mwc::tsp
