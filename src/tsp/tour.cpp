#include "tsp/tour.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"

namespace mwc::tsp {

double Tour::length(std::span<const geom::Point> points) const {
  return length_with([&](std::size_t a, std::size_t b) {
    MWC_DEBUG_ASSERT(a < points.size() && b < points.size());
    return geom::distance(points[a], points[b]);
  });
}

bool Tour::is_simple() const {
  std::unordered_set<std::size_t> seen;
  for (std::size_t v : order_) {
    if (!seen.insert(v).second) return false;
  }
  return true;
}

bool Tour::visits(std::size_t v) const {
  return std::find(order_.begin(), order_.end(), v) != order_.end();
}

void Tour::rotate_to_front(std::size_t v) {
  const auto it = std::find(order_.begin(), order_.end(), v);
  MWC_ASSERT_MSG(it != order_.end(), "rotate_to_front: node not on tour");
  std::rotate(order_.begin(), it, order_.end());
}

double total_length(std::span<const Tour> tours,
                    std::span<const geom::Point> points) {
  double sum = 0.0;
  for (const auto& t : tours) sum += t.length(points);
  return sum;
}

}  // namespace mwc::tsp
