#include "tsp/improve.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mwc::tsp {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

double dist(const DistanceView& d, std::size_t a, std::size_t b) {
  return d(a, b);
}

/// Locally accumulated telemetry, flushed once per polisher call so the
/// move-evaluation loops stay free of atomic traffic. Probe counts split
/// by cached (oracle) vs direct (recomputed) kernels like tsp/qrooted.cpp.
struct ImproveCounts {
  std::uint64_t passes = 0;
  std::uint64_t probes = 0;
  std::uint64_t cand_evals = 0;  ///< candidate-list edges examined
  std::uint64_t moves = 0;       ///< accepted improving moves

  void flush(const DistanceView& d) const {
    MWC_OBS_COUNT_N("tsp.improve_passes", passes);
    MWC_OBS_COUNT_N("tsp.improve.moves", moves);
    MWC_OBS_COUNT_N("tsp.cand.hits", cand_evals);
    if (d.cached()) {
      MWC_OBS_COUNT_N("oracle.probe_hits", probes);
    } else {
      MWC_OBS_COUNT_N("oracle.probe_misses", probes);
    }
#if !MWC_OBS_ENABLED
    (void)d;
#endif
  }
};

/// True when `opts` selects the candidate path for a tour of `tour_size`
/// nodes over a view of `view_size`: a caller-supplied graph over the
/// same node space that is not degenerate-complete (complete graphs
/// dispatch to the exhaustive sweep so the k >= n limit stays
/// bit-identical with it), and a tour large enough for candidate pruning
/// to pay off (see ImproveOptions::candidate_min_nodes).
bool use_candidates(const ImproveOptions& opts, std::size_t tour_size,
                    std::size_t view_size) {
  return !opts.exhaustive && opts.candidates != nullptr &&
         opts.candidates->size() == view_size &&
         !opts.candidates->complete() &&
         tour_size >= opts.candidate_min_nodes;
}

// ---------------------------------------------------------------------------
// Exhaustive sweeps (golden reference).

double two_opt_exhaustive(Tour& tour, const DistanceView& points,
                          const ImproveOptions& opts, ImproveCounts& counts) {
  auto& order = tour.order();
  const std::size_t n = order.size();

  double total_gain = 0.0;
  for (std::size_t pass = 0; pass < opts.max_passes; ++pass) {
    ++counts.passes;
    bool improved = false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      // j+1 wraps; skip adjacent pairs.
      for (std::size_t j = i + 2; j < n; ++j) {
        if (i == 0 && j == n - 1) continue;  // same edge pair
        counts.probes += 4;
        // Re-read endpoints each step: an accepted reversal earlier in
        // this pass changes order[i+1..].
        const std::size_t a = order[i];
        const std::size_t b = order[i + 1];
        const std::size_t c = order[j];
        const std::size_t d = order[(j + 1) % n];
        const double before = dist(points, a, b) + dist(points, c, d);
        const double after = dist(points, a, c) + dist(points, b, d);
        if (before - after > opts.min_gain) {
          std::reverse(order.begin() + i + 1, order.begin() + j + 1);
          total_gain += before - after;
          ++counts.moves;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return total_gain;
}

double or_opt_exhaustive(Tour& tour, const DistanceView& points,
                         const ImproveOptions& opts, ImproveCounts& counts) {
  auto& order = tour.order();
  const std::size_t n = order.size();

  double total_gain = 0.0;
  for (std::size_t pass = 0; pass < opts.max_passes; ++pass) {
    ++counts.passes;
    bool improved = false;
    // n >= seg_len + 3: with fewer than three outside nodes the only
    // "relocation" is a disguised 2-opt flip (two_opt's job), and tiny
    // tours fall through to no segment length at all.
    for (std::size_t seg_len = 1; seg_len <= 3 && n >= seg_len + 3;
         ++seg_len) {
      for (std::size_t i = 0; i + seg_len <= n; ++i) {
        // Segment order[i .. i+seg_len-1] (no wraparound).
        const std::size_t p = order[(i + n - 1) % n];
        const std::size_t s0 = order[i];
        const std::size_t s1 = order[i + seg_len - 1];
        const std::size_t q = order[(i + seg_len) % n];
        if (p == s1 || q == s0) continue;  // segment is the whole tour
        const double removal_gain = dist(points, p, s0) +
                                    dist(points, s1, q) - dist(points, p, q);
        counts.probes += 3;
        if (removal_gain <= opts.min_gain) continue;

        // Tour with the segment removed; try every insertion slot in it.
        std::vector<std::size_t> rest;
        rest.reserve(n - seg_len);
        rest.insert(rest.end(), order.begin(), order.begin() + i);
        rest.insert(rest.end(), order.begin() + i + seg_len, order.end());
        const std::size_t r = rest.size();

        double best_delta = -opts.min_gain;
        std::size_t best_slot = r;  // insert after rest[best_slot]
        for (std::size_t j = 0; j < r; ++j) {
          const std::size_t u = rest[j];
          const std::size_t v = rest[(j + 1) % r];
          const double insertion_cost = dist(points, u, s0) +
                                        dist(points, s1, v) -
                                        dist(points, u, v);
          counts.probes += 3;
          const double delta = insertion_cost - removal_gain;  // < 0 good
          if (delta < best_delta) {
            best_delta = delta;
            best_slot = j;
          }
        }
        if (best_slot == r) continue;

        std::vector<std::size_t> seg(order.begin() + i,
                                     order.begin() + i + seg_len);
        rest.insert(rest.begin() + best_slot + 1, seg.begin(), seg.end());
        order = std::move(rest);
        total_gain += -best_delta;
        ++counts.moves;
        improved = true;
      }
    }
    if (!improved) break;
  }
  return total_gain;
}

// ---------------------------------------------------------------------------
// Candidate-list mode: O(n·k) per pass. Tours may visit any subset of the
// node space, so positions are tracked in a space-sized array with kNpos
// marking nodes outside this tour (their candidates are skipped).

/// Fills pos[node] = tour index for the tour's nodes.
void index_positions(const std::vector<std::size_t>& order,
                     std::vector<std::size_t>& pos) {
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
}

double two_opt_candidates(Tour& tour, const DistanceView& points,
                          const CandidateGraph& cand,
                          const ImproveOptions& opts,
                          ImproveCounts& counts) {
  auto& order = tour.order();
  const std::size_t n = order.size();

  std::vector<std::size_t> pos(points.size(), kNpos);
  index_positions(order, pos);

  // First-improvement work queue seeded in tour order (or with just the
  // caller's seed_nodes for a localized re-polish); a node leaves the
  // queue once it yields no improving move (its don't-look bit) and
  // re-enters when one of its tour edges changes.
  std::vector<std::size_t> queue;
  std::vector<char> in_queue(points.size(), 0);
  if (opts.seed_nodes != nullptr) {
    for (std::size_t v : *opts.seed_nodes) {
      if (v < pos.size() && pos[v] != kNpos && !in_queue[v]) {
        in_queue[v] = 1;
        queue.push_back(v);
      }
    }
  } else {
    queue = order;
    for (std::size_t v : order) in_queue[v] = 1;
  }
  std::size_t head = 0;

  // Safety valve mirroring the sweep version's pass cap; local search
  // terminates on its own (each move shortens the tour by > min_gain).
  const std::size_t max_steps = opts.max_passes * n * 8 + 64;
  std::size_t steps = 0;

  // Scratch for the batched candidate scans (reused across steps).
  std::vector<std::size_t> cs, es;
  std::vector<double> d_ac, d_ce, d_be;

  double total_gain = 0.0;
  while (head < queue.size() && steps < max_steps) {
    const std::size_t a = queue[head++];
    in_queue[a] = 0;

    bool again = true;
    while (again && steps < max_steps) {
      ++steps;
      again = false;
      // Best-improvement over a's whole candidate neighborhood: scanning
      // all k rows costs the same as first-improvement without a sorted
      // break (which would hide moves whose gain comes from the other new
      // edge, d_be < d_ce while d_ac >= d_ab), and applying the single
      // best move is far less order-dependent, so candidate mode lands in
      // local optima much closer to the exhaustive sweep's.
      double best_gain = opts.min_gain;
      std::size_t best_lo = 0;
      std::size_t best_hi = 0;
      std::size_t best_b = 0;
      std::size_t best_c = 0;
      std::size_t best_e = 0;
      // Both tour edges at a: dir 0 pairs successors, dir 1 predecessors.
      for (int dir = 0; dir < 2; ++dir) {
        const std::size_t pa = pos[a];
        const std::size_t b = dir == 0 ? order[(pa + 1) % n]
                                       : order[(pa + n - 1) % n];
        const double d_ab = dist(points, a, b);
        ++counts.probes;
        // Gather the valid (c, e) pairs in candidate-row order, batch
        // the three distance arrays through the SIMD kernels, then
        // replay the original selection loop over the results — same
        // comparisons in the same order, so the chosen move (and hence
        // the tour) is bit-identical to the per-probe scan.
        cs.clear();
        es.clear();
        for (const std::size_t c : cand.neighbors(a)) {
          ++counts.cand_evals;
          if (pos[c] == kNpos || c == b) continue;
          const std::size_t pc = pos[c];
          const std::size_t e = dir == 0 ? order[(pc + 1) % n]
                                         : order[(pc + n - 1) % n];
          if (e == a) continue;
          cs.push_back(c);
          es.push_back(e);
        }
        if (cs.empty()) continue;
        d_ac.resize(cs.size());
        d_ce.resize(cs.size());
        d_be.resize(cs.size());
        points.distances_to(a, cs, d_ac.data());
        points.distances_pairs(cs, es, d_ce.data());
        points.distances_to(b, es, d_be.data());
        counts.probes += 3 * cs.size();
        for (std::size_t t = 0; t < cs.size(); ++t) {
          const double gain = d_ab + d_ce[t] - d_ac[t] - d_be[t];
          if (gain <= best_gain) continue;

          // Removed edges sit at tour positions lo/hi; reversing the
          // inner segment installs (a,c) and (b,e).
          const std::size_t pc = pos[cs[t]];
          std::size_t lo = dir == 0 ? pa : (pa + n - 1) % n;
          std::size_t hi = dir == 0 ? pc : (pc + n - 1) % n;
          if (lo > hi) std::swap(lo, hi);
          best_gain = gain;
          best_lo = lo;
          best_hi = hi;
          best_b = b;
          best_c = cs[t];
          best_e = es[t];
        }
      }
      if (best_gain > opts.min_gain) {
        std::reverse(order.begin() + best_lo + 1, order.begin() + best_hi + 1);
        for (std::size_t t = best_lo + 1; t <= best_hi; ++t)
          pos[order[t]] = t;
        total_gain += best_gain;
        ++counts.moves;
        for (const std::size_t v : {a, best_b, best_c, best_e}) {
          if (!in_queue[v]) {
            in_queue[v] = 1;
            queue.push_back(v);
          }
        }
        again = true;  // rescan a with its fresh tour edges
      }
    }
  }
  counts.passes += steps / n + 1;  // queue steps, normalized to sweep units
  return total_gain;
}

double or_opt_candidates(Tour& tour, const DistanceView& points,
                         const CandidateGraph& cand,
                         const ImproveOptions& opts, ImproveCounts& counts) {
  auto& order = tour.order();
  const std::size_t n = order.size();

  std::vector<std::size_t> pos(points.size(), kNpos);
  index_positions(order, pos);
  std::vector<char> dont_look(points.size(), 0);
  if (opts.seed_nodes != nullptr) {
    // Localized re-polish: every node starts asleep except the seeds.
    for (std::size_t v : order) dont_look[v] = 1;
    for (std::size_t v : *opts.seed_nodes)
      if (v < pos.size() && pos[v] != kNpos) dont_look[v] = 0;
  }

  // Candidate slots accumulate here per segment, in the exact order the
  // per-probe version evaluated them; three batched pair-distance calls
  // then feed the original comparator replay. Inserting after node u
  // (tour successor v) in the forward orientation puts s0 next to u; the
  // reversed orientation puts s1 there — extra power the exhaustive
  // sweep doesn't have, clawing back slots candidate pruning can't see.
  std::vector<std::size_t> us, vs, heads, tails;
  std::vector<char> revs;
  std::vector<double> d_uh, d_tv, d_uv;

  double total_gain = 0.0;
  for (std::size_t pass = 0; pass < opts.max_passes; ++pass) {
    ++counts.passes;
    bool improved = false;
    for (std::size_t idx = 0; idx < n; ++idx) {
      const std::size_t a = order[idx];
      if (dont_look[a]) continue;
      bool node_improved = false;

      for (std::size_t seg_len = 1; seg_len <= 3 && n >= seg_len + 3;
           ++seg_len) {
        const std::size_t i = pos[a];
        if (i + seg_len > n) continue;  // segments never wrap (as in sweep)
        const std::size_t s0 = a;
        const std::size_t s1 = order[i + seg_len - 1];
        const std::size_t p = order[(i + n - 1) % n];
        const std::size_t q = order[(i + seg_len) % n];
        const double removal_gain = dist(points, p, s0) +
                                    dist(points, s1, q) - dist(points, p, q);
        counts.probes += 3;
        if (removal_gain <= opts.min_gain) continue;

        const auto in_segment = [&](std::size_t v) {
          const std::size_t pv = pos[v];
          return pv >= i && pv < i + seg_len;
        };

        // Gathers the slot after u in the given orientation. u == p is
        // the only node whose successor lies inside the segment, so it
        // is never a valid slot.
        const auto consider = [&](std::size_t u, bool reversed) {
          if (pos[u] == kNpos || in_segment(u) || u == p) return;
          us.push_back(u);
          vs.push_back(order[(pos[u] + 1) % n]);
          heads.push_back(reversed ? s1 : s0);
          tails.push_back(reversed ? s0 : s1);
          revs.push_back(reversed ? 1 : 0);
        };
        us.clear();
        vs.clear();
        heads.clear();
        tails.clear();
        revs.clear();
        // Each neighbor c of an endpoint offers two slots: the segment's
        // matching end lands after c (c = u), or before it (u = pred(c)).
        for (const std::size_t c : cand.neighbors(s0)) {
          counts.cand_evals += 2;
          if (pos[c] == kNpos) continue;
          consider(c, /*reversed=*/false);          // u—s0…s1—v, u = c
          if (!in_segment(c))                       // u—s1…s0—v, v = c
            consider(order[(pos[c] + n - 1) % n], /*reversed=*/true);
        }
        for (const std::size_t c : cand.neighbors(s1)) {
          counts.cand_evals += 2;
          if (pos[c] == kNpos) continue;
          consider(c, /*reversed=*/true);           // u—s1…s0—v, u = c
          if (!in_segment(c))                       // u—s0…s1—v, v = c
            consider(order[(pos[c] + n - 1) % n], /*reversed=*/false);
        }
        if (us.empty()) continue;

        // Batch the three distance arrays, then replay the original
        // tie-broken minimum scan in gathering order — bit-identical to
        // the per-slot evaluation.
        d_uh.resize(us.size());
        d_tv.resize(us.size());
        d_uv.resize(us.size());
        points.distances_pairs(us, heads, d_uh.data());
        points.distances_pairs(tails, vs, d_tv.data());
        points.distances_pairs(us, vs, d_uv.data());
        counts.probes += 3 * us.size();
        double best_delta = -opts.min_gain;
        std::size_t best_u = kNpos;
        bool best_rev = false;
        for (std::size_t t = 0; t < us.size(); ++t) {
          const std::size_t u = us[t];
          const bool reversed = revs[t] != 0;
          const double delta = d_uh[t] + d_tv[t] - d_uv[t] - removal_gain;
          if (delta < best_delta ||
              (delta == best_delta &&
               (u < best_u || (u == best_u && !reversed && best_rev)))) {
            best_delta = delta;
            best_u = u;
            best_rev = reversed;
          }
        }
        if (best_u == kNpos) continue;

        // Splice: remove the segment, reinsert it after best_u.
        std::vector<std::size_t> seg(order.begin() + i,
                                     order.begin() + i + seg_len);
        if (best_rev) std::reverse(seg.begin(), seg.end());
        order.erase(order.begin() + i, order.begin() + i + seg_len);
        const auto slot = static_cast<std::size_t>(
            std::find(order.begin(), order.end(), best_u) - order.begin());
        order.insert(order.begin() + slot + 1, seg.begin(), seg.end());
        index_positions(order, pos);

        total_gain += -best_delta;
        ++counts.moves;
        node_improved = true;
        improved = true;
        for (const std::size_t v : {p, q, s0, s1, best_u}) dont_look[v] = 0;
        break;  // positions shifted; move on to the next tour slot
      }
      if (!node_improved) dont_look[a] = 1;
    }
    if (!improved) break;
  }
  return total_gain;
}

}  // namespace

double two_opt(Tour& tour, const DistanceView& points,
               const ImproveOptions& opts) {
  if (tour.size() < 4) return 0.0;
  ImproveCounts counts;
  const double gain =
      use_candidates(opts, tour.size(), points.size())
          ? two_opt_candidates(tour, points, *opts.candidates, opts, counts)
          : two_opt_exhaustive(tour, points, opts, counts);
  counts.flush(points);
  return gain;
}

double or_opt(Tour& tour, const DistanceView& points,
              const ImproveOptions& opts) {
  // Explicit tiny-tour early return: relocation needs a segment plus at
  // least three outside nodes, so n <= 3 (and, per segment length,
  // n <= seg_len + 2) has no move to offer.
  if (tour.size() < 4) return 0.0;
  ImproveCounts counts;
  const double gain =
      use_candidates(opts, tour.size(), points.size())
          ? or_opt_candidates(tour, points, *opts.candidates, opts, counts)
          : or_opt_exhaustive(tour, points, opts, counts);
  counts.flush(points);
  return gain;
}

double improve_tour(Tour& tour, const DistanceView& points,
                    const ImproveOptions& opts) {
  MWC_OBS_SCOPE("tsp.improve_tour");
  double total = 0.0;
  std::uint64_t rounds = 0;
  for (std::size_t round = 0; round < opts.max_passes; ++round) {
    ++rounds;
    const double g = two_opt(tour, points, opts) + or_opt(tour, points, opts);
    total += g;
    if (g <= opts.min_gain) break;
  }
  MWC_OBS_COUNT_N("tsp.improve_rounds", rounds);
  return total;
}

double two_opt(Tour& tour, std::span<const geom::Point> points,
               const ImproveOptions& opts) {
  return two_opt(tour, DistanceView::direct(points), opts);
}

double or_opt(Tour& tour, std::span<const geom::Point> points,
              const ImproveOptions& opts) {
  return or_opt(tour, DistanceView::direct(points), opts);
}

double improve_tour(Tour& tour, std::span<const geom::Point> points,
                    const ImproveOptions& opts) {
  return improve_tour(tour, DistanceView::direct(points), opts);
}

}  // namespace mwc::tsp
