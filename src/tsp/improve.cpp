#include "tsp/improve.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mwc::tsp {

namespace {

double dist(const DistanceView& d, std::size_t a, std::size_t b) {
  return d(a, b);
}

/// One flush per polisher call: probe counts accumulate in locals so the
/// candidate-evaluation loops stay free of atomic traffic, split by
/// cached (oracle) vs direct (recomputed) kernels like tsp/qrooted.cpp.
inline void flush_improve_counts(const DistanceView& d, std::uint64_t passes,
                                 std::uint64_t probes) {
  MWC_OBS_COUNT_N("tsp.improve_passes", passes);
  if (d.cached()) {
    MWC_OBS_COUNT_N("oracle.probe_hits", probes);
  } else {
    MWC_OBS_COUNT_N("oracle.probe_misses", probes);
  }
#if !MWC_OBS_ENABLED
  (void)d;
  (void)passes;
  (void)probes;
#endif
}

}  // namespace

double two_opt(Tour& tour, const DistanceView& points,
               const ImproveOptions& opts) {
  auto& order = tour.order();
  const std::size_t n = order.size();
  if (n < 4) return 0.0;

  double total_gain = 0.0;
  std::uint64_t passes = 0;
  std::uint64_t evals = 0;
  for (std::size_t pass = 0; pass < opts.max_passes; ++pass) {
    ++passes;
    bool improved = false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      // j+1 wraps; skip adjacent pairs.
      for (std::size_t j = i + 2; j < n; ++j) {
        if (i == 0 && j == n - 1) continue;  // same edge pair
        ++evals;
        // Re-read endpoints each step: an accepted reversal earlier in
        // this pass changes order[i+1..].
        const std::size_t a = order[i];
        const std::size_t b = order[i + 1];
        const std::size_t c = order[j];
        const std::size_t d = order[(j + 1) % n];
        const double before = dist(points, a, b) + dist(points, c, d);
        const double after = dist(points, a, c) + dist(points, b, d);
        if (before - after > opts.min_gain) {
          std::reverse(order.begin() + i + 1, order.begin() + j + 1);
          total_gain += before - after;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  flush_improve_counts(points, passes, evals * 4);  // 4 probes per candidate
  return total_gain;
}

double or_opt(Tour& tour, const DistanceView& points,
              const ImproveOptions& opts) {
  auto& order = tour.order();
  const std::size_t n = order.size();
  if (n < 4) return 0.0;

  double total_gain = 0.0;
  std::uint64_t passes = 0;
  std::uint64_t probes = 0;
  for (std::size_t pass = 0; pass < opts.max_passes; ++pass) {
    ++passes;
    bool improved = false;
    for (std::size_t seg_len = 1; seg_len <= 3 && n >= seg_len + 2;
         ++seg_len) {
      for (std::size_t i = 0; i + seg_len <= n; ++i) {
        // Segment order[i .. i+seg_len-1] (no wraparound).
        const std::size_t p = order[(i + n - 1) % n];
        const std::size_t s0 = order[i];
        const std::size_t s1 = order[i + seg_len - 1];
        const std::size_t q = order[(i + seg_len) % n];
        if (p == s1 || q == s0) continue;  // segment is the whole tour
        const double removal_gain = dist(points, p, s0) +
                                    dist(points, s1, q) - dist(points, p, q);
        probes += 3;
        if (removal_gain <= opts.min_gain) continue;

        // Tour with the segment removed; try every insertion slot in it.
        std::vector<std::size_t> rest;
        rest.reserve(n - seg_len);
        rest.insert(rest.end(), order.begin(), order.begin() + i);
        rest.insert(rest.end(), order.begin() + i + seg_len, order.end());
        const std::size_t r = rest.size();

        double best_delta = -opts.min_gain;
        std::size_t best_slot = r;  // insert after rest[best_slot]
        for (std::size_t j = 0; j < r; ++j) {
          const std::size_t u = rest[j];
          const std::size_t v = rest[(j + 1) % r];
          const double insertion_cost = dist(points, u, s0) +
                                        dist(points, s1, v) -
                                        dist(points, u, v);
          probes += 3;
          const double delta = insertion_cost - removal_gain;  // < 0 good
          if (delta < best_delta) {
            best_delta = delta;
            best_slot = j;
          }
        }
        if (best_slot == r) continue;

        std::vector<std::size_t> seg(order.begin() + i,
                                     order.begin() + i + seg_len);
        rest.insert(rest.begin() + best_slot + 1, seg.begin(), seg.end());
        order = std::move(rest);
        total_gain += -best_delta;
        improved = true;
      }
    }
    if (!improved) break;
  }
  flush_improve_counts(points, passes, probes);
  return total_gain;
}

double improve_tour(Tour& tour, const DistanceView& points,
                    const ImproveOptions& opts) {
  MWC_OBS_SCOPE("tsp.improve_tour");
  double total = 0.0;
  std::uint64_t rounds = 0;
  for (std::size_t round = 0; round < opts.max_passes; ++round) {
    ++rounds;
    const double g = two_opt(tour, points, opts) + or_opt(tour, points, opts);
    total += g;
    if (g <= opts.min_gain) break;
  }
  MWC_OBS_COUNT_N("tsp.improve_rounds", rounds);
  return total;
}

double two_opt(Tour& tour, std::span<const geom::Point> points,
               const ImproveOptions& opts) {
  return two_opt(tour, DistanceView::direct(points), opts);
}

double or_opt(Tour& tour, std::span<const geom::Point> points,
              const ImproveOptions& opts) {
  return or_opt(tour, DistanceView::direct(points), opts);
}

double improve_tour(Tour& tour, std::span<const geom::Point> points,
                    const ImproveOptions& opts) {
  return improve_tour(tour, DistanceView::direct(points), opts);
}

}  // namespace mwc::tsp
