#include "tsp/exact.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "graph/mst.hpp"
#include "util/assert.hpp"

namespace mwc::tsp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Held-Karp over an explicit point list; returns (optimal length, order)
// with order beginning at local index 0.
std::pair<double, std::vector<std::size_t>> held_karp_impl(
    std::span<const geom::Point> pts) {
  const std::size_t n = pts.size();
  if (n == 0) return {0.0, {}};
  if (n == 1) return {0.0, {0}};
  MWC_ASSERT_MSG(n <= 20, "held_karp: instance too large");

  const std::size_t m = n - 1;           // nodes 1..n-1 vary; node 0 fixed
  const std::size_t full = std::size_t{1} << m;

  std::vector<double> dist(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      dist[i * n + j] = geom::distance(pts[i], pts[j]);

  // dp[mask][j]: best path 0 -> (visits mask) -> node j+1.
  std::vector<double> dp(full * m, kInf);
  std::vector<std::size_t> from(full * m, 0);
  for (std::size_t j = 0; j < m; ++j)
    dp[(std::size_t{1} << j) * m + j] = dist[0 * n + (j + 1)];

  for (std::size_t mask = 1; mask < full; ++mask) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!(mask & (std::size_t{1} << j))) continue;
      const double cur = dp[mask * m + j];
      if (cur == kInf) continue;
      for (std::size_t k = 0; k < m; ++k) {
        if (mask & (std::size_t{1} << k)) continue;
        const std::size_t nmask = mask | (std::size_t{1} << k);
        const double cand = cur + dist[(j + 1) * n + (k + 1)];
        if (cand < dp[nmask * m + k]) {
          dp[nmask * m + k] = cand;
          from[nmask * m + k] = j;
        }
      }
    }
  }

  double best = kInf;
  std::size_t best_j = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const double cand = dp[(full - 1) * m + j] + dist[(j + 1) * n + 0];
    if (cand < best) {
      best = cand;
      best_j = j;
    }
  }

  // Reconstruct.
  std::vector<std::size_t> order(n);
  std::size_t mask = full - 1;
  std::size_t j = best_j;
  for (std::size_t pos = n - 1; pos >= 1; --pos) {
    order[pos] = j + 1;
    const std::size_t pj = from[mask * m + j];
    mask ^= (std::size_t{1} << j);
    j = pj;
    if (pos == 1) break;
  }
  order[0] = 0;
  return {best, order};
}

}  // namespace

Tour held_karp_tsp(std::span<const geom::Point> points) {
  auto [len, order] = held_karp_impl(points);
  (void)len;
  return Tour(std::move(order));
}

double held_karp_anchored_length(std::span<const geom::Point> points,
                                 std::size_t anchor,
                                 std::span<const std::size_t> subset) {
  if (subset.empty()) return 0.0;
  std::vector<geom::Point> pts;
  pts.reserve(subset.size() + 1);
  pts.push_back(points[anchor]);
  for (std::size_t s : subset) {
    MWC_DEBUG_ASSERT(s != anchor);
    pts.push_back(points[s]);
  }
  return held_karp_impl(pts).first;
}

namespace {

// Iterates all q^m assignments, invoking fn(assignment) with
// assignment[k] = depot of sensor k.
template <typename Fn>
void for_each_assignment(std::size_t q, std::size_t m, Fn&& fn) {
  MWC_ASSERT_MSG(m <= 10, "brute force: too many sensors");
  const double combos = std::pow(static_cast<double>(q),
                                 static_cast<double>(m));
  MWC_ASSERT_MSG(combos <= 2.5e6, "brute force: q^m too large");

  std::vector<std::size_t> assignment(m, 0);
  for (;;) {
    fn(assignment);
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < m) {
      if (++assignment[pos] < q) break;
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == m) break;
  }
}

}  // namespace

double brute_force_q_rooted_tsp(const QRootedInstance& instance) {
  const std::size_t q = instance.q();
  const std::size_t m = instance.m();
  MWC_ASSERT(q >= 1);
  const auto points = instance.points();

  double best = kInf;
  for_each_assignment(q, m, [&](const std::vector<std::size_t>& assignment) {
    double total = 0.0;
    std::vector<std::size_t> group;
    for (std::size_t l = 0; l < q && total < best; ++l) {
      group.clear();
      for (std::size_t k = 0; k < m; ++k) {
        if (assignment[k] == l) group.push_back(q + k);
      }
      std::vector<geom::Point> anchored;
      anchored.reserve(group.size() + 1);
      anchored.push_back(points[l]);
      for (std::size_t s : group) anchored.push_back(points[s]);
      total += group.empty() ? 0.0 : held_karp_impl(anchored).first;
    }
    best = std::min(best, total);
  });
  return best;
}

double brute_force_q_rooted_msf(const QRootedInstance& instance) {
  const std::size_t q = instance.q();
  const std::size_t m = instance.m();
  MWC_ASSERT(q >= 1);
  const auto points = instance.points();

  double best = kInf;
  for_each_assignment(q, m, [&](const std::vector<std::size_t>& assignment) {
    double total = 0.0;
    std::vector<std::size_t> group;
    for (std::size_t l = 0; l < q && total < best; ++l) {
      group.clear();
      group.push_back(l);
      for (std::size_t k = 0; k < m; ++k) {
        if (assignment[k] == l) group.push_back(q + k);
      }
      if (group.size() == 1) continue;
      const auto mst = graph::prim_mst(
          group.size(),
          [&](std::size_t a, std::size_t b) {
            return geom::distance(points[group[a]], points[group[b]]);
          },
          0);
      total += mst.total_weight;
    }
    best = std::min(best, total);
  });
  return best;
}

}  // namespace mwc::tsp
