#include "tsp/split.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mwc::tsp {

namespace {

// The tour's nodes in visiting order, rotated to start right after the
// root (the root itself excluded).
std::vector<std::size_t> nodes_after_root(const Tour& tour,
                                          std::size_t root) {
  Tour rotated = tour;
  rotated.rotate_to_front(root);
  return {rotated.order().begin() + 1, rotated.order().end()};
}

void finalize(SplitResult& result, const DistanceView& d) {
  result.total_length = 0.0;
  result.max_length = 0.0;
  for (const auto& t : result.tours) {
    const double len = t.length_with(d);
    result.total_length += len;
    result.max_length = std::max(result.max_length, len);
  }
}

}  // namespace

SplitResult split_tour_capacity(const DistanceView& d, const Tour& tour,
                                std::size_t root, double capacity) {
  MWC_OBS_SCOPE("tsp.split_capacity");
  MWC_OBS_COUNT("tsp.splits");
  MWC_ASSERT(capacity > 0.0);
  SplitResult result;
  if (tour.size() <= 1) {
    result.tours.emplace_back(std::vector<std::size_t>{root});
    return result;
  }
  const auto nodes = nodes_after_root(tour, root);
  for (std::size_t v : nodes) {
    const double round_trip = 2.0 * d(root, v);
    MWC_ASSERT_MSG(round_trip <= capacity + 1e-9,
                   "capacity below a node's round trip: no feasible split");
  }

  std::vector<std::size_t> current{root};
  double current_len = 0.0;  // closed length of `current`
  for (std::size_t v : nodes) {
    const std::size_t last = current.back();
    const double detour_to_v = d(last, v) +
                               d(v, root) -
                               d(last, root);
    if (current.size() > 1 && current_len + detour_to_v > capacity + 1e-9) {
      result.tours.emplace_back(std::move(current));
      current = {root};
      current_len = 0.0;
    }
    const std::size_t tail = current.back();
    current_len += d(tail, v) +
                   d(v, root) -
                   (current.size() > 1
                        ? d(tail, root)
                        : 0.0);
    current.push_back(v);
  }
  if (current.size() > 1) result.tours.emplace_back(std::move(current));
  if (result.tours.empty())
    result.tours.emplace_back(std::vector<std::size_t>{root});
  finalize(result, d);
  return result;
}

SplitResult split_tour_minmax(const DistanceView& d, const Tour& tour,
                              std::size_t root, std::size_t k) {
  MWC_OBS_SCOPE("tsp.split_minmax");
  MWC_OBS_COUNT("tsp.splits");
  MWC_ASSERT(k >= 1);
  SplitResult result;
  if (tour.size() <= 1) {
    for (std::size_t j = 0; j < k; ++j)
      result.tours.emplace_back(std::vector<std::size_t>{root});
    return result;
  }
  const auto nodes = nodes_after_root(tour, root);
  const std::size_t m = nodes.size();

  // Prefix path costs along the tour: cost[i] = root -> nodes[0..i].
  std::vector<double> prefix(m, 0.0);
  prefix[0] = d(root, nodes[0]);
  for (std::size_t i = 1; i < m; ++i) {
    prefix[i] =
        prefix[i - 1] + d(nodes[i - 1], nodes[i]);
  }
  const double total_path =
      prefix[m - 1] + d(nodes[m - 1], root);

  // Cut after the last node whose prefix cost is <= j * total / k
  // (Frederickson's splitting rule, adapted to closed tours).
  std::size_t start = 0;
  for (std::size_t j = 1; j <= k; ++j) {
    std::size_t end = m;  // exclusive
    if (j < k) {
      const double threshold =
          static_cast<double>(j) * total_path / static_cast<double>(k);
      end = start;
      while (end < m && prefix[end] <= threshold) ++end;
    }
    std::vector<std::size_t> segment{root};
    for (std::size_t i = start; i < end; ++i) segment.push_back(nodes[i]);
    result.tours.emplace_back(std::move(segment));
    start = end;
  }
  MWC_DEBUG_ASSERT(start == m);
  finalize(result, d);
  return result;
}

double minmax_split_lower_bound(const DistanceView& d, const Tour& tour,
                                std::size_t root, std::size_t k) {
  MWC_ASSERT(k >= 1);
  if (tour.size() <= 1) return 0.0;
  double farthest = 0.0;
  for (std::size_t v : tour.order()) {
    farthest = std::max(farthest,
                        2.0 * d(root, v));
  }
  // Any cover must serve the farthest node with a closed trip through the
  // root — a true lower bound regardless of how the tour is split.
  return farthest;
}

SplitResult split_tour_capacity(std::span<const geom::Point> points,
                                const Tour& tour, std::size_t root,
                                double capacity) {
  return split_tour_capacity(DistanceView::direct(points), tour, root,
                             capacity);
}

SplitResult split_tour_minmax(std::span<const geom::Point> points,
                              const Tour& tour, std::size_t root,
                              std::size_t k) {
  return split_tour_minmax(DistanceView::direct(points), tour, root, k);
}

double minmax_split_lower_bound(std::span<const geom::Point> points,
                                const Tour& tour, std::size_t root,
                                std::size_t k) {
  return minmax_split_lower_bound(DistanceView::direct(points), tour, root,
                                  k);
}

}  // namespace mwc::tsp
