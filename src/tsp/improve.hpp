// Local-search tour improvement: 2-opt and Or-opt.
//
// The paper's algorithms stop at the double-tree shortcut; these polishers
// are the library's optional extension (`bench/abl_tour_improvement`
// measures whether they change the MinTotalDistance-vs-Greedy story; they
// do not, both policies improve roughly equally).
#pragma once

#include <cstddef>
#include <span>

#include "geom/point.hpp"
#include "tsp/oracle.hpp"
#include "tsp/tour.hpp"

namespace mwc::tsp {

struct ImproveOptions {
  std::size_t max_passes = 16;   ///< full sweeps before giving up
  double min_gain = 1e-9;        ///< ignore numerically-zero improvements
};

// Every polisher exists in two forms: the DistanceView form is the
// implementation (one distance kernel, cached or direct), the point-span
// form wraps it in a direct-geometry view. Results are bit-identical.

/// 2-opt: repeatedly reverses segments while any reversal shortens the
/// tour. In-place; returns the total gain (>= 0).
double two_opt(Tour& tour, const DistanceView& distances,
               const ImproveOptions& opts = {});
double two_opt(Tour& tour, std::span<const geom::Point> points,
               const ImproveOptions& opts = {});

/// Or-opt: relocates segments of length 1..3 to better positions.
/// In-place; returns the total gain (>= 0).
double or_opt(Tour& tour, const DistanceView& distances,
              const ImproveOptions& opts = {});
double or_opt(Tour& tour, std::span<const geom::Point> points,
              const ImproveOptions& opts = {});

/// 2-opt followed by Or-opt, iterated until neither improves.
double improve_tour(Tour& tour, const DistanceView& distances,
                    const ImproveOptions& opts = {});
double improve_tour(Tour& tour, std::span<const geom::Point> points,
                    const ImproveOptions& opts = {});

}  // namespace mwc::tsp
