// Local-search tour improvement: 2-opt and Or-opt.
//
// The paper's algorithms stop at the double-tree shortcut; these polishers
// are the library's optional extension (`bench/abl_tour_improvement`
// measures whether they change the MinTotalDistance-vs-Greedy story; they
// do not, both policies improve roughly equally).
//
// Two execution modes per polisher:
//   * candidate mode (default when `ImproveOptions::candidates` supplies a
//     CandidateGraph over the distance view's node space) — scans only
//     k-nearest candidate edges with don't-look bits and a
//     first-improvement queue, O(n·k) per pass;
//   * exhaustive mode (`ImproveOptions::exhaustive`, or whenever no usable
//     candidate graph is available) — the original full O(n²) sweep,
//     kept as the golden reference.
// A complete candidate graph (k >= n-1) dispatches to the exhaustive
// sweep, so results are bit-identical in that limit; with k ≈ 10 the
// candidate mode lands within a fraction of a percent of the sweep at a
// fraction of the cost (bench/micro_improve, BENCH_improve.json).
#pragma once

#include <cstddef>
#include <span>

#include "geom/point.hpp"
#include "tsp/candidates.hpp"
#include "tsp/oracle.hpp"
#include "tsp/tour.hpp"

namespace mwc::tsp {

struct ImproveOptions {
  std::size_t max_passes = 16;   ///< full sweeps before giving up
  double min_gain = 1e-9;        ///< ignore numerically-zero improvements

  /// Force the full O(n²) sweeps even when a candidate graph is set.
  bool exhaustive = false;

  /// Candidate graph over the *distance view's* node space (node indices
  /// of the graph and the view must coincide; tours may visit any subset
  /// of that space, so one graph serves all q tours of a round). Null, a
  /// size mismatch, or a complete() graph falls back to the exhaustive
  /// sweep. Non-owning; the caller keeps the graph alive.
  const CandidateGraph* candidates = nullptr;

  /// Tours smaller than this run the exhaustive sweep even in candidate
  /// mode. A subset tour sees only the fraction of each node's k nearest
  /// neighbors that landed in the same tour, so small tours get thin
  /// candidate coverage — and below ~50 nodes the O(n²) sweep is cheaper
  /// than the queue machinery anyway.
  std::size_t candidate_min_nodes = 48;

  /// Localized re-polish (candidate mode only): when non-null, only the
  /// listed nodes start with their don't-look bits cleared — everything
  /// else is presumed locally optimal until a move touches one of its
  /// tour edges. The incremental delta path seeds this with the nodes a
  /// patch moved plus their candidate neighbors, making re-polish of an
  /// already-polished tour O(k·|touched|) instead of O(n·k). Nodes
  /// outside the tour are ignored; the exhaustive sweep ignores the
  /// list entirely. Non-owning; the caller keeps the vector alive.
  const std::vector<std::size_t>* seed_nodes = nullptr;
};

// Every polisher exists in two forms: the DistanceView form is the
// implementation (one distance kernel, cached or direct), the point-span
// form wraps it in a direct-geometry view. Results are bit-identical.

/// 2-opt: repeatedly reverses segments while any reversal shortens the
/// tour. In-place; returns the total gain (>= 0).
double two_opt(Tour& tour, const DistanceView& distances,
               const ImproveOptions& opts = {});
double two_opt(Tour& tour, std::span<const geom::Point> points,
               const ImproveOptions& opts = {});

/// Or-opt: relocates segments of length 1..3 to better positions.
/// In-place; returns the total gain (>= 0). Tours with n <= seg_len + 2
/// skip that segment length (fewer than three outside nodes leave no
/// genuine relocation slot — only disguised 2-opt flips, which two_opt
/// already covers).
double or_opt(Tour& tour, const DistanceView& distances,
              const ImproveOptions& opts = {});
double or_opt(Tour& tour, std::span<const geom::Point> points,
              const ImproveOptions& opts = {});

/// 2-opt followed by Or-opt, iterated until neither improves.
double improve_tour(Tour& tour, const DistanceView& distances,
                    const ImproveOptions& opts = {});
double improve_tour(Tour& tour, std::span<const geom::Point> points,
                    const ImproveOptions& opts = {});

}  // namespace mwc::tsp
