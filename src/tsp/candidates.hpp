// Candidate-graph layer for the tour pipeline: the k nearest neighbors of
// every node, computed once per instance from a spatial index and shared
// by all policies that plan over the same point set.
//
// The classical TSP-literature accelerant (Lin–Kernighan-style candidate
// lists): almost every improving 2-opt/Or-opt move and almost every MSF
// edge joins a node to one of its few nearest neighbors, so local search
// and Prim's relaxation only need to look at O(k) candidates per node
// instead of O(n). tsp::two_opt / tsp::or_opt walk these lists with
// don't-look bits (see improve.hpp) and tsp::q_rooted_msf prunes Prim to
// candidate + depot edges (see qrooted.hpp); both keep the dense sweep as
// the golden-reference fallback.
//
// Node indices are whatever space the points span uses — for the q-rooted
// pipeline that is the combined depot+sensor space of DistanceOracle /
// QRootedInstance, so one graph serves every tour of a round.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.hpp"

namespace mwc::tsp {

struct CandidateOptions {
  /// Neighbors kept per node. A dozen captures essentially every
  /// improving move on planar Euclidean instances (the golden suite in
  /// tests/tsp/candidates_test.cpp pins candidate tours within 1% of the
  /// exhaustive sweep at this default); k >= n-1 degenerates to the
  /// complete graph (see CandidateGraph::complete()).
  std::size_t k = 12;

  /// Spatial index used for the k-NN queries. kAuto picks the kd-tree
  /// (robust on clustered deployments); kGrid is the expected-O(1) choice
  /// on uniform deployments (bench/micro_spatial quantifies the
  /// trade-off). Both backends produce the identical neighbor lists —
  /// sorted by distance, ties on the smaller index.
  enum class Backend { kAuto, kKdTree, kGrid };
  Backend backend = Backend::kAuto;

  /// Grid resolution knob, forwarded to geom::GridIndex.
  double grid_target_per_cell = 2.0;
};

/// Node-index remapping from a base graph's point space to a patched
/// one, driving CandidateGraph::repair. Removals compact the index
/// space in order (survivors keep their relative order); additions are
/// appended after the survivors.
struct CandidateRemap {
  static constexpr std::size_t kRemoved = static_cast<std::size_t>(-1);

  /// For each base node: its index in the patched space, or kRemoved.
  std::vector<std::size_t> old_to_new;
  /// Patched point count (survivors + additions).
  std::size_t new_size = 0;
  /// Patched-space ids whose geometry is new — added nodes and moved
  /// survivors. Their rows are re-queried, as is any row they disturb.
  std::vector<std::size_t> fresh;
};

/// Immutable k-nearest-neighbor lists over a fixed point set. Build once
/// per instance (O(n log n) via geom::KdTree, expected O(n·k) via
/// geom::GridIndex), then neighbors(i) is a zero-cost span lookup. Row i
/// holds min(k, n-1) neighbor indices sorted by ascending distance (ties
/// by ascending index), never including i itself.
class CandidateGraph {
 public:
  CandidateGraph() = default;

  /// Builds the graph. Counts one `tsp.cand.rebuilds` telemetry event.
  static CandidateGraph build(std::span<const geom::Point> points,
                              const CandidateOptions& options = {});

  /// Repairs `base` against a patched point set without re-querying
  /// every row: a row is re-queried only when its node is fresh, it
  /// references a removed/moved neighbor, or a fresh point breaks into
  /// its top-k; all other rows are index-remapped in place. The result
  /// is exactly CandidateGraph::build(new_points, options) — the dirty
  /// tests are conservative in the sorted-row sense, not approximate.
  /// Counts `tsp.cand.repairs` plus per-row reuse telemetry.
  static CandidateGraph repair(const CandidateGraph& base,
                               std::span<const geom::Point> new_points,
                               const CandidateRemap& remap,
                               const CandidateOptions& options = {});

  std::size_t size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  /// Neighbors actually stored per node: min(options.k, n-1).
  std::size_t k() const noexcept { return k_; }

  /// True when every node's candidate list holds all other nodes — the
  /// graph degenerates to the complete graph and candidate-pruned
  /// routines dispatch to their dense counterparts (bit-identical
  /// results by construction).
  bool complete() const noexcept { return n_ <= 1 || k_ + 1 >= n_; }

  /// Candidate neighbor indices of node i, ascending by distance.
  std::span<const std::size_t> neighbors(std::size_t i) const noexcept {
    return {flat_.data() + i * k_, k_};
  }

 private:
  std::size_t n_ = 0;
  std::size_t k_ = 0;
  std::vector<std::size_t> flat_;  ///< n_ rows of k_ indices
};

}  // namespace mwc::tsp
