// Closed tours over indexed points.
//
// A `Tour` is a cyclic visiting order; the stored sequence lists each node
// once and the closing edge back to the first node is implicit. Tours with
// zero or one node have zero length (a charger that never leaves its depot).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.hpp"

namespace mwc::tsp {

class Tour {
 public:
  Tour() = default;
  explicit Tour(std::vector<std::size_t> order) : order_(std::move(order)) {}

  const std::vector<std::size_t>& order() const noexcept { return order_; }
  std::vector<std::size_t>& order() noexcept { return order_; }

  std::size_t size() const noexcept { return order_.size(); }
  bool empty() const noexcept { return order_.empty(); }

  /// Total closed length under the Euclidean metric on `points`.
  double length(std::span<const geom::Point> points) const;

  /// Total closed length under an arbitrary distance oracle.
  template <typename DistFn>
  double length_with(DistFn&& dist) const {
    if (order_.size() < 2) return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i + 1 < order_.size(); ++i)
      total += dist(order_[i], order_[i + 1]);
    total += dist(order_.back(), order_.front());
    return total;
  }

  /// True if every node appears exactly once.
  bool is_simple() const;

  /// True if the tour visits node `v`.
  bool visits(std::size_t v) const;

  /// Rotates the order in place so that `v` comes first. Requires that the
  /// tour visits v. Length is unchanged (tours are cyclic).
  void rotate_to_front(std::size_t v);

 private:
  std::vector<std::size_t> order_;
};

/// Sum of lengths over a set of tours.
double total_length(std::span<const Tour> tours,
                    std::span<const geom::Point> points);

}  // namespace mwc::tsp
