// Shared distance oracle over the combined depot+sensor index space.
//
// Every layer of the reproduction — Algorithm 1's contracted MST,
// Algorithm 2's double-tree tours, the 2-opt/Or-opt polishers, and the
// simulator's per-dispatch costing — probes Euclidean distances on the
// same point set over and over. `DistanceOracle` materializes those
// distances once per network into a flat row-major cache (lazily, row by
// row, thread-safe), and `DistanceView` is the one kernel every tsp
// routine reads through:
//
//   * `DistanceOracle::dispatch_view(ids)` — the combined subspace
//     {all q depots} ∪ {q + id : id ∈ ids} of one dispatch set, served
//     from the cache;
//   * `DistanceView::direct(...)` — the uncached fallback computing
//     geom::distance on the fly (bit-identical values), used when no
//     oracle exists for the points at hand.
//
// Both modes produce bit-identical distances, so construction and
// improvement routines yield *identical* tours either way — the golden
// tests in tests/tsp/oracle_test.cpp pin that equivalence.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "geom/distance.hpp"
#include "geom/point.hpp"

namespace mwc::tsp {

class DistanceOracle;

/// Non-owning distance kernel over an indexed node set. Either backed by
/// a `DistanceOracle` (cached lookups) or by raw points (direct
/// geometry). An optional index map re-labels local indices into the
/// backing space, which is how submatrix/dispatch views avoid copying.
class DistanceView {
 public:
  DistanceView() = default;

  /// Direct-geometry view over a contiguous point span.
  static DistanceView direct(std::span<const geom::Point> points);

  /// Direct-geometry view over the concatenation head ++ tail (the
  /// QRootedInstance depots-then-sensors layout, without the copy).
  static DistanceView direct(std::span<const geom::Point> head,
                             std::span<const geom::Point> tail);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// True when reads hit a materialized cache instead of recomputing.
  bool cached() const noexcept { return oracle_ != nullptr; }

  /// Distance between local node indices i and j.
  double operator()(std::size_t i, std::size_t j) const;

  /// Batched probes: out[k] = (*this)(i, js[k]) for every k. Cached
  /// views gather from the (SIMD-filled) oracle row; direct views gather
  /// coordinates and run one geom::simd row kernel. Bit-identical to
  /// per-probe operator() either way.
  void distances_to(std::size_t i, std::span<const std::size_t> js,
                    double* out) const;

  /// Batched probes: out[k] = (*this)(as[k], bs[k]) for every k
  /// (as.size() == bs.size()).
  void distances_pairs(std::span<const std::size_t> as,
                       std::span<const std::size_t> bs, double* out) const;

  /// View over a subset of this view's nodes; `locals[k]` becomes node k
  /// of the returned view. Maps compose, so sub-views of sub-views keep
  /// reading the same backing storage.
  DistanceView sub(std::vector<std::size_t> locals) const;

 private:
  friend class DistanceOracle;

  const DistanceOracle* oracle_ = nullptr;
  std::span<const geom::Point> head_;
  std::span<const geom::Point> tail_;
  std::vector<std::size_t> map_;  ///< local -> backing index; empty = identity
  std::size_t size_ = 0;

  const geom::Point& backing_point(std::size_t i) const noexcept {
    return i < head_.size() ? head_[i] : tail_[i - head_.size()];
  }
};

/// Per-network pairwise-distance cache over the combined index space:
/// indices 0..q-1 are the depots, q..q+m-1 the sensors, exactly the
/// convention of tsp::QRootedInstance. Rows materialize on first touch
/// (see geom::LazyDistanceMatrix), so building an oracle is O(q + m) and
/// only probed rows ever pay the O(q + m) fill. Move-only.
class DistanceOracle {
 public:
  DistanceOracle() = default;

  /// Combined space from separate depot and sensor position lists.
  DistanceOracle(std::span<const geom::Point> depots,
                 std::span<const geom::Point> sensors);

  /// Combined space from an already-concatenated point list whose first
  /// `num_depots` entries are depots.
  explicit DistanceOracle(std::vector<geom::Point> points,
                          std::size_t num_depots = 0);

  std::size_t size() const noexcept { return matrix_.size(); }
  std::size_t q() const noexcept { return q_; }
  bool empty() const noexcept { return matrix_.empty(); }
  std::span<const geom::Point> points() const noexcept {
    return matrix_.points();
  }

  /// Cached distance between combined indices (first touch of row i
  /// materializes it; safe to call concurrently).
  double operator()(std::size_t i, std::size_t j) const {
    return matrix_(i, j);
  }

  /// Combined-space row i as a contiguous span, materializing it (one
  /// SIMD fill) if needed. What the batched DistanceView probes read.
  std::span<const double> row(std::size_t i) const { return matrix_.row(i); }

  /// View over the whole combined space.
  DistanceView view() const;

  /// View over an arbitrary subset of combined indices; `subset[k]`
  /// becomes node k of the view.
  DistanceView submatrix(std::vector<std::size_t> subset) const;

  /// View over one dispatch set: all q depots followed by the sensors
  /// with the given ids (combined index q + id), i.e. the exact node
  /// space q_rooted_tsp runs on for that dispatch.
  DistanceView dispatch_view(std::span<const std::size_t> sensor_ids) const;

  /// Eagerly fills all rows (bench warm-up helper).
  void materialize_all() const { matrix_.materialize_all(); }

  /// Rows materialized so far (cache-occupancy statistic).
  std::size_t rows_materialized() const noexcept {
    return matrix_.rows_materialized();
  }

 private:
  std::size_t q_ = 0;
  geom::LazyDistanceMatrix matrix_;
};

inline double DistanceView::operator()(std::size_t i, std::size_t j) const {
  const std::size_t a = map_.empty() ? i : map_[i];
  const std::size_t b = map_.empty() ? j : map_[j];
  if (oracle_ != nullptr) return (*oracle_)(a, b);
  return geom::distance(backing_point(a), backing_point(b));
}

}  // namespace mwc::tsp
