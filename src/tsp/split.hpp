// Tour splitting: turning one rooted closed tour into several rooted
// closed tours, either to bound each subtour's length (capacity-limited
// chargers — cf. Liang et al. [7] in the paper's related work) or to
// balance load across k chargers stationed at the same depot (min-max
// makespan — cf. Xu et al. [16]).
//
// Both use the classic segment-splitting construction: walk the tour,
// cut it into consecutive segments, and close each segment through the
// root. Shortcutting and the triangle inequality give the standard
// guarantees:
//   * capacity: every subtour has length <= L, provided every single
//     round trip root->node->root fits in L; the number of subtours is
//     at most ceil(2 w(C) / L) + 1 in the worst case.
//   * min-max: with k subtours, the longest is at most
//     w(C)/k + 2 max_dist, where max_dist is the farthest node's distance
//     from the root (Frederickson-style bound).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.hpp"
#include "tsp/oracle.hpp"
#include "tsp/tour.hpp"

namespace mwc::tsp {

struct SplitResult {
  /// Each subtour starts at the root (tour.order().front() == root).
  std::vector<Tour> tours;
  double total_length = 0.0;  ///< sum over subtours
  double max_length = 0.0;    ///< longest subtour
};

// Each splitter exists in two forms: the DistanceView form is the
// implementation (one distance kernel, cached or direct), the point-span
// form wraps it in a direct-geometry view. Results are bit-identical.

/// Splits `tour` (a closed tour that visits `root`) into subtours of
/// length at most `capacity` each. Asserts that every node's round trip
/// from the root fits in `capacity` (otherwise no feasible split exists).
SplitResult split_tour_capacity(const DistanceView& distances,
                                const Tour& tour, std::size_t root,
                                double capacity);
SplitResult split_tour_capacity(std::span<const geom::Point> points,
                                const Tour& tour, std::size_t root,
                                double capacity);

/// Splits `tour` into exactly `k` subtours (some possibly root-only),
/// minimizing the longest via the j/k cost-prefix rule. k >= 1.
SplitResult split_tour_minmax(const DistanceView& distances,
                              const Tour& tour, std::size_t root,
                              std::size_t k);
SplitResult split_tour_minmax(std::span<const geom::Point> points,
                              const Tour& tour, std::size_t root,
                              std::size_t k);

/// True lower bound on any k-charger makespan over this node set: the
/// farthest node's round trip through the root. Useful for tests and
/// reporting.
double minmax_split_lower_bound(const DistanceView& distances,
                                const Tour& tour, std::size_t root,
                                std::size_t k);
double minmax_split_lower_bound(std::span<const geom::Point> points,
                                const Tour& tour, std::size_t root,
                                std::size_t k);

}  // namespace mwc::tsp
