#include "tsp/qrooted.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>
#include <utility>

#include "graph/mst.hpp"
#include "obs/obs.hpp"
#include "tsp/construct.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace mwc::tsp {

namespace {

/// Flushes a locally accumulated probe count into the global registry,
/// split by whether the kernel served them from the materialized oracle
/// cache ("hits") or recomputed geometry directly ("misses"). One atomic
/// add per construction call — the probe loops themselves stay
/// uninstrumented.
inline void flush_probe_count(const DistanceView& distances,
                              std::uint64_t probes) {
  if (distances.cached()) {
    MWC_OBS_COUNT_N("oracle.probe_hits", probes);
  } else {
    MWC_OBS_COUNT_N("oracle.probe_misses", probes);
  }
#if !MWC_OBS_ENABLED
  (void)distances;
  (void)probes;
#endif
}

/// True when `candidates` can actually prune for this view: covers the
/// combined node space and is not degenerate-complete (the complete graph
/// dispatches dense so the k >= n limit stays bit-identical).
bool prunable(const CandidateGraph* candidates, std::size_t view_size) {
  return candidates != nullptr && candidates->size() == view_size &&
         !candidates->complete();
}

/// Sparse Prim over the contracted aux graph (node 0 = virtual root,
/// 1..m = sensors) restricted to candidate sensor-sensor edges plus the
/// root's star. The star edge to every sensor (its nearest-depot
/// distance) keeps the pruned graph connected, so a spanning tree always
/// exists; its weight can only exceed the dense MST's when some true MST
/// edge joins two sensors that are not mutual-or-one-way candidates —
/// essentially never on Euclidean instances at k ≈ 10 (pinned by tests,
/// escape-hatched by verify_against_dense).
graph::MstResult prim_msf_pruned(const DistanceView& distances, std::size_t q,
                                 const CandidateGraph& cand,
                                 std::span<const double> root_dist,
                                 std::uint64_t& probes,
                                 std::uint64_t& cand_evals) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  const std::size_t m = distances.size() - q;

  // Symmetrized candidate adjacency in local sensor space: kNN is not a
  // symmetric relation, but Prim must be able to relax an edge from
  // whichever endpoint enters the tree first.
  std::vector<std::vector<std::size_t>> adj(m);
  for (std::size_t k = 0; k < m; ++k) {
    for (const std::size_t c : cand.neighbors(q + k)) {
      if (c < q) continue;  // depot edges enter via the root star
      adj[k].push_back(c - q);
      adj[c - q].push_back(k);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  graph::MstResult result;
  std::vector<double> best(m + 1, kInf);
  std::vector<std::size_t> best_from(m + 1, kNone);
  std::vector<char> in_tree(m + 1, 0);

  // Lazy binary heap of (key, aux node); stale entries are skipped on
  // extraction. Pair ordering breaks key ties on the smaller node index.
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;

  in_tree[0] = 1;
  for (std::size_t k = 0; k < m; ++k) {
    best[k + 1] = root_dist[k];
    best_from[k + 1] = 0;
    heap.emplace(root_dist[k], k + 1);
  }

  result.edges.reserve(m);
  // Key updates run in two passes per extraction: gather the still-open
  // frontier neighbors, one batched row probe, then the original relax
  // loop over the results (same order, same comparisons — bit-identical).
  std::vector<std::size_t> batch_js;
  std::vector<std::size_t> batch_v;
  std::vector<double> batch_w;
  for (std::size_t added = 0; added < m;) {
    MWC_ASSERT_MSG(!heap.empty(), "root star keeps the aux graph connected");
    const auto [key, u] = heap.top();
    heap.pop();
    if (in_tree[u] || key > best[u]) continue;  // stale entry
    in_tree[u] = 1;
    result.edges.push_back(graph::Edge{best_from[u], u, best[u]});
    result.total_weight += best[u];
    ++added;
    batch_js.clear();
    batch_v.clear();
    for (const std::size_t j : adj[u - 1]) {
      const std::size_t v = j + 1;
      if (in_tree[v]) continue;
      batch_js.push_back(q + j);
      batch_v.push_back(v);
    }
    if (batch_js.empty()) continue;
    cand_evals += batch_js.size();
    probes += batch_js.size();
    batch_w.resize(batch_js.size());
    distances.distances_to(q + u - 1, batch_js, batch_w.data());
    for (std::size_t t = 0; t < batch_v.size(); ++t) {
      const std::size_t v = batch_v[t];
      const double w = batch_w[t];
      if (w < best[v]) {
        best[v] = w;
        best_from[v] = u;
        heap.emplace(w, v);
      }
    }
  }
  return result;
}

/// Shared core of the dense and pruned MSF entry points: nearest-depot
/// scan, aux-graph MST (dense or candidate-pruned), un-contract.
QRootedForest msf_impl(const DistanceView& distances, std::size_t q,
                       const CandidateGraph* candidates,
                       bool verify_against_dense) {
  MWC_OBS_SCOPE("tsp.q_rooted_msf");
  MWC_ASSERT_MSG(q >= 1, "q-rooted MSF needs at least one depot");
  MWC_ASSERT(q <= distances.size());
  const std::size_t m = distances.size() - q;

  QRootedForest result;
  result.trees.reserve(q);

  if (m == 0) {
    for (std::size_t l = 0; l < q; ++l)
      result.trees.emplace_back(l, std::span<const graph::Edge>{});
    return result;
  }

  MWC_OBS_COUNT("tsp.msf_builds");
  // Probes accumulate in a local and flush once at the end, so the
  // Prim/root-scan inner loops pay no atomic traffic.
  std::uint64_t probes = 0;
  std::uint64_t cand_evals = 0;

  // Auxiliary contracted graph G_r: node 0 is the virtual root r (all q
  // depots merged), nodes 1..m are the sensors. w_r(0, k) is the distance
  // from sensor k to its nearest depot; remember which depot realizes it.
  std::vector<double> root_dist(m, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> nearest_depot(m, 0);
  {
    // Depot-major, cache-blocked scan: one batched row probe per
    // (depot, sensor-block) instead of m per-sensor depot loops. In
    // oracle mode this materializes the q depot rows rather than all m
    // sensor rows (the entire matrix); distances are symmetric
    // bit-for-bit, so probing (l, q+k) equals the seed's (q+k, l), and
    // merging depots in ascending order with strict < keeps the seed's
    // first-minimal-depot tie-breaking.
    constexpr std::size_t kBlock = 4096;
    std::vector<std::size_t> sensor_ids(m);
    for (std::size_t k = 0; k < m; ++k) sensor_ids[k] = q + k;
    std::vector<double> dl(std::min(m, kBlock));
    for (std::size_t k0 = 0; k0 < m; k0 += kBlock) {
      const std::size_t len = std::min(kBlock, m - k0);
      const std::span<const std::size_t> block(sensor_ids.data() + k0, len);
      for (std::size_t l = 0; l < q; ++l) {
        distances.distances_to(l, block, dl.data());
        for (std::size_t k = 0; k < len; ++k) {
          if (dl[k] < root_dist[k0 + k]) {
            root_dist[k0 + k] = dl[k];
            nearest_depot[k0 + k] = l;
          }
        }
      }
    }
  }
  probes += static_cast<std::uint64_t>(m) * q;

  const auto aux_dist = [&](std::size_t i, std::size_t j) -> double {
    if (i == j) return 0.0;
    if (i == 0) return root_dist[j - 1];
    if (j == 0) return root_dist[i - 1];
    ++probes;
    return distances(q + i - 1, q + j - 1);
  };

  graph::MstResult mst;
  if (prunable(candidates, distances.size())) {
    mst = prim_msf_pruned(distances, q, *candidates, root_dist, probes,
                          cand_evals);
    if (verify_against_dense) {
      auto dense = graph::prim_mst_with(m + 1, aux_dist, /*root=*/0);
      if (mst.total_weight >
          dense.total_weight * (1.0 + 1e-12) + 1e-9) {
        MWC_OBS_COUNT("tsp.msf_prune_fallbacks");
        mst = std::move(dense);
      }
    }
  } else {
    mst = graph::prim_mst_with(m + 1, aux_dist, /*root=*/0);
  }
  flush_probe_count(distances, probes);
  MWC_OBS_COUNT_N("tsp.cand.hits", cand_evals);

  // Un-contract: an MST edge (0, k) becomes (nearest_depot[k-1], sensor).
  // Each subtree hanging off the virtual root attaches through exactly one
  // such edge, so assigning subtree edges to that depot partitions the MST
  // into q depot-rooted trees (possibly several subtrees per depot).
  const auto parent = graph::mst_parents(m + 1, mst.edges, /*root=*/0);

  // owner[aux_node] = depot owning that node's subtree (sensors only).
  std::vector<std::size_t> owner(m + 1, q);
  // Resolve owners top-down: a sensor attached to the root gets its
  // nearest depot; otherwise it inherits its parent's owner. Iterate until
  // fixed point (parents can appear after children in edge order, so walk
  // by increasing depth via repeated sweeps; MST has <= m+1 nodes so the
  // loop is cheap).
  {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t v = 1; v <= m; ++v) {
        if (owner[v] != q) continue;
        if (parent[v] == 0) {
          owner[v] = nearest_depot[v - 1];
          changed = true;
        } else if (owner[parent[v]] != q) {
          owner[v] = owner[parent[v]];
          changed = true;
        }
      }
    }
  }

  // Build per-depot edge lists in combined index space.
  std::vector<std::vector<graph::Edge>> depot_edges(q);
  for (const auto& e : mst.edges) {
    const std::size_t a = e.u;
    const std::size_t b = e.v;
    if (a == 0 || b == 0) {
      const std::size_t s = (a == 0) ? b : a;  // sensor aux index
      const std::size_t depot = nearest_depot[s - 1];
      depot_edges[depot].push_back(
          graph::Edge{depot, q + (s - 1), e.w});
    } else {
      const std::size_t depot = owner[a];
      MWC_DEBUG_ASSERT(owner[a] == owner[b]);
      depot_edges[depot].push_back(
          graph::Edge{q + (a - 1), q + (b - 1), e.w});
    }
  }

  for (std::size_t l = 0; l < q; ++l) {
    result.trees.emplace_back(l, depot_edges[l]);
    result.total_weight += result.trees.back().total_weight();
  }
  MWC_DEBUG_ASSERT(std::abs(result.total_weight - mst.total_weight) <
                   1e-6 * (1.0 + mst.total_weight));
  return result;
}

}  // namespace

std::vector<geom::Point> CombinedPointsView::materialize() const {
  std::vector<geom::Point> pts;
  pts.reserve(size());
  pts.insert(pts.end(), depots_.begin(), depots_.end());
  pts.insert(pts.end(), sensors_.begin(), sensors_.end());
  return pts;
}

QRootedForest q_rooted_msf(const QRootedInstance& instance) {
  return q_rooted_msf(instance.distances(), instance.q());
}

QRootedForest q_rooted_msf(const DistanceView& distances, std::size_t q) {
  return msf_impl(distances, q, nullptr, false);
}

QRootedForest q_rooted_msf(const DistanceView& distances, std::size_t q,
                           const CandidateGraph* candidates,
                           bool verify_against_dense) {
  return msf_impl(distances, q, candidates, verify_against_dense);
}

QRootedForest repair_q_rooted_msf(const DistanceView& distances,
                                  std::size_t q, const QRootedForest& base,
                                  const MsfRepairPlan& plan,
                                  const CandidateGraph* candidates,
                                  MsfRepairStats* stats) {
  MWC_OBS_SCOPE("tsp.msf_repair");
  MWC_OBS_COUNT("tsp.repair.msf");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  MWC_ASSERT_MSG(q >= 1 && base.trees.size() == q,
                 "base forest must have one tree per depot");
  MWC_ASSERT_MSG(plan.tree_dirty.size() == q, "tree_dirty must have size q");
  MWC_ASSERT_MSG(plan.root_active.empty() || plan.root_active.size() == q,
                 "root_active must be empty or size q");
  const std::size_t total = distances.size();

  const auto active = [&](std::size_t l) {
    return plan.root_active.empty() || plan.root_active[l] != 0;
  };
  std::size_t num_active = 0;
  for (std::size_t l = 0; l < q; ++l) {
    if (active(l)) ++num_active;
    MWC_ASSERT_MSG(active(l) || plan.tree_dirty[l] != 0,
                   "inactive roots must have dirty trees");
  }
  MWC_ASSERT_MSG(num_active >= 1, "at least one depot must stay active");

  // Split sensors into the dirty region (re-spanned below) and the clean
  // remainder (kept verbatim, owner recorded for grafting).
  std::vector<std::size_t> owner(total, kNone);  // clean sensors only
  std::vector<std::size_t> dirty;                // combined sensor ids
  std::vector<std::size_t> clean;
  for (std::size_t l = 0; l < q; ++l) {
    for (const std::size_t v : base.trees[l].nodes()) {
      if (v < q) continue;
      MWC_ASSERT_MSG(v < total, "base tree node outside the combined space");
      if (plan.tree_dirty[l]) {
        dirty.push_back(v);
      } else {
        owner[v] = l;
        clean.push_back(v);
      }
    }
  }
  for (const std::size_t v : plan.extra_sensors) {
    MWC_ASSERT_MSG(v >= q && v < total, "extra sensor outside the space");
    dirty.push_back(v);
  }
  std::sort(dirty.begin(), dirty.end());
  const std::size_t d = dirty.size();
  MWC_OBS_COUNT_N("tsp.repair.dirty_sensors", d);
  if (stats != nullptr) stats->dirty_sensors = d;

  std::uint64_t probes = 0;
  std::uint64_t cand_evals = 0;

  // Dirty-local index of each combined id.
  std::vector<std::size_t> local(total, kNone);
  for (std::size_t k = 0; k < d; ++k) local[dirty[k]] = k;

  // Virtual-root star: everything already connected — active depots and
  // clean sensors — contracts into aux node 0. For each dirty sensor,
  // find its cheapest attachment into that structure: all active depots
  // exactly, plus clean sensors from its candidate row (or all of them
  // when running dense).
  std::vector<double> root_dist(d, kInf);
  std::vector<std::size_t> attach(d, kNone);  // combined id realizing it
  const bool pruned = prunable(candidates, total);
  {
    // Batched attachment scan: per dirty sensor, gather every legal
    // attachment target in the seed's evaluation order (active depots
    // ascending, then candidate/clean sensors), one row probe, then the
    // original strict-< merge — first minimum wins, bit-identical.
    std::vector<std::size_t> active_depots;
    for (std::size_t l = 0; l < q; ++l)
      if (active(l)) active_depots.push_back(l);
    std::vector<std::size_t> targets;
    std::vector<double> tw;
    for (std::size_t k = 0; k < d; ++k) {
      const std::size_t s = dirty[k];
      targets.assign(active_depots.begin(), active_depots.end());
      if (pruned) {
        for (const std::size_t c : candidates->neighbors(s)) {
          ++cand_evals;
          if (c < q || owner[c] == kNone) continue;
          targets.push_back(c);
        }
      } else {
        targets.insert(targets.end(), clean.begin(), clean.end());
      }
      tw.resize(targets.size());
      distances.distances_to(s, targets, tw.data());
      probes += targets.size();
      for (std::size_t t = 0; t < targets.size(); ++t) {
        if (tw[t] < root_dist[k]) {
          root_dist[k] = tw[t];
          attach[k] = targets[t];
        }
      }
    }
  }

  // Dirty-dirty adjacency: candidate rows restricted to the dirty set
  // (symmetrized), or all pairs when dense.
  std::vector<std::vector<std::size_t>> adj(d);
  if (pruned) {
    for (std::size_t k = 0; k < d; ++k) {
      for (const std::size_t c : candidates->neighbors(dirty[k])) {
        ++cand_evals;
        if (c < q || local[c] == kNone) continue;
        adj[k].push_back(local[c]);
        adj[local[c]].push_back(k);
      }
    }
    for (auto& a : adj) {
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
    }
  } else {
    for (std::size_t k = 0; k < d; ++k)
      for (std::size_t j = 0; j < d; ++j)
        if (j != k) adj[k].push_back(j);
  }

  // Lazy-heap Prim over aux nodes {0 = contracted clean structure,
  // 1..d = dirty sensors} — the same scheme as prim_msf_pruned.
  graph::MstResult mst;
  if (d > 0) {
    std::vector<double> best(d + 1, kInf);
    std::vector<std::size_t> best_from(d + 1, kNone);
    std::vector<char> in_tree(d + 1, 0);
    using Item = std::pair<double, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    in_tree[0] = 1;
    for (std::size_t k = 0; k < d; ++k) {
      best[k + 1] = root_dist[k];
      best_from[k + 1] = 0;
      heap.emplace(root_dist[k], k + 1);
    }
    mst.edges.reserve(d);
    // Same gather / batch-probe / relay scheme as prim_msf_pruned.
    std::vector<std::size_t> batch_js;
    std::vector<std::size_t> batch_v;
    std::vector<double> batch_w;
    for (std::size_t added = 0; added < d;) {
      MWC_ASSERT_MSG(!heap.empty(), "root star keeps the aux graph connected");
      const auto [key, u] = heap.top();
      heap.pop();
      if (in_tree[u] || key > best[u]) continue;  // stale entry
      in_tree[u] = 1;
      mst.edges.push_back(graph::Edge{best_from[u], u, best[u]});
      mst.total_weight += best[u];
      ++added;
      batch_js.clear();
      batch_v.clear();
      for (const std::size_t j : adj[u - 1]) {
        const std::size_t v = j + 1;
        if (in_tree[v]) continue;
        batch_js.push_back(dirty[j]);
        batch_v.push_back(v);
      }
      if (batch_js.empty()) continue;
      probes += batch_js.size();
      batch_w.resize(batch_js.size());
      distances.distances_to(dirty[u - 1], batch_js, batch_w.data());
      for (std::size_t t = 0; t < batch_v.size(); ++t) {
        const std::size_t v = batch_v[t];
        const double w = batch_w[t];
        if (w < best[v]) {
          best[v] = w;
          best_from[v] = u;
          heap.emplace(w, v);
        }
      }
    }
  }
  flush_probe_count(distances, probes);
  MWC_OBS_COUNT_N("tsp.cand.hits", cand_evals);

  // Un-contract in the dirty subspace: sensors attached to aux node 0
  // inherit the depot of their attachment point (the depot itself, or
  // the owner of the clean sensor they graft onto); sensor-sensor edges
  // inherit by parent propagation.
  const auto parent = graph::mst_parents(d + 1, mst.edges, /*root=*/0);
  std::vector<std::size_t> dirty_owner(d + 1, kNone);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t v = 1; v <= d; ++v) {
      if (dirty_owner[v] != kNone) continue;
      if (parent[v] == 0) {
        const std::size_t at = attach[v - 1];
        dirty_owner[v] = at < q ? at : owner[at];
        changed = true;
      } else if (dirty_owner[parent[v]] != kNone) {
        dirty_owner[v] = dirty_owner[parent[v]];
        changed = true;
      }
    }
  }

  std::vector<std::vector<graph::Edge>> new_edges(q);
  for (const auto& e : mst.edges) {
    const std::size_t u = e.u;
    const std::size_t v = e.v;
    if (u == 0 || v == 0) {
      const std::size_t k = (u == 0) ? v : u;  // dirty aux index
      new_edges[dirty_owner[k]].push_back(
          graph::Edge{attach[k - 1], dirty[k - 1], e.w});
    } else {
      MWC_DEBUG_ASSERT(dirty_owner[u] == dirty_owner[v]);
      new_edges[dirty_owner[u]].push_back(
          graph::Edge{dirty[u - 1], dirty[v - 1], e.w});
    }
  }

  QRootedForest result;
  result.trees.reserve(q);
  std::size_t rebuilt = 0;
  std::vector<char> tree_changed(q, 0);
  for (std::size_t l = 0; l < q; ++l) {
    if (!plan.tree_dirty[l] && new_edges[l].empty()) {
      result.trees.push_back(base.trees[l]);  // untouched — reuse
    } else {
      ++rebuilt;
      tree_changed[l] = 1;
      std::vector<graph::Edge> edges;
      if (!plan.tree_dirty[l])
        edges.assign(base.trees[l].edges().begin(),
                     base.trees[l].edges().end());
      edges.insert(edges.end(), new_edges[l].begin(), new_edges[l].end());
      result.trees.emplace_back(l, edges);
    }
    result.total_weight += result.trees.back().total_weight();
  }
  MWC_OBS_COUNT_N("tsp.repair.rebuilt_trees", rebuilt);
  MWC_OBS_COUNT_N("tsp.repair.reused_trees", q - rebuilt);
  if (stats != nullptr) {
    stats->rebuilt_trees = rebuilt;
    stats->reused_trees = q - rebuilt;
    stats->tree_changed = std::move(tree_changed);
  }
  return result;
}

QRootedTours q_rooted_tsp(const QRootedInstance& instance,
                          const QRootedOptions& options) {
  // Build the candidate graph on demand only on the explicit candidate_msf
  // opt-in: plain `improve` must stay bit-exact with the DistanceView
  // overload (the GoldenEquivalence contract), which has no geometry to
  // build a graph from. Callers wanting candidate-mode polish alone pass
  // their own graph (as the simulator does).
  if (options.candidate_msf && options.candidates == nullptr) {
    const auto combined = instance.points().materialize();
    const auto graph = CandidateGraph::build(combined,
                                             options.candidate_options);
    QRootedOptions with_graph = options;
    with_graph.candidates = &graph;
    return q_rooted_tsp(instance.distances(), instance.q(), with_graph);
  }
  return q_rooted_tsp(instance.distances(), instance.q(), options);
}

QRootedTours q_rooted_tsp(const DistanceView& distances, std::size_t q,
                          const QRootedOptions& options,
                          ThreadPool* polish_pool) {
  MWC_OBS_SCOPE("tsp.q_rooted_tsp");
  auto forest =
      options.candidate_msf
          ? q_rooted_msf(distances, q, options.candidates,
                         options.verify_candidate_msf)
          : q_rooted_msf(distances, q);

  QRootedTours result;
  result.tours.reserve(forest.trees.size());
  for (const auto& tree : forest.trees) {
    Tour tour;
    switch (options.construction) {
      case TourConstruction::kDoubleTree:
        tour = tree_to_tour(tree.edges(), tree.root());
        break;
      case TourConstruction::kChristofides: {
        // Re-solve the group's tour from scratch; the MSF only decides
        // which depot serves which sensors.
        const auto& nodes = tree.nodes();
        std::size_t local_root = 0;
        for (std::size_t k = 0; k < nodes.size(); ++k)
          if (nodes[k] == tree.root()) local_root = k;
        Tour local = christofides_tour(
            distances.sub({nodes.begin(), nodes.end()}), local_root);
        std::vector<std::size_t> order;
        order.reserve(local.size());
        for (std::size_t v : local.order()) order.push_back(nodes[v]);
        tour = Tour(std::move(order));
        break;
      }
    }
    result.tours.push_back(std::move(tour));
  }

  if (options.improve) {
    ImproveOptions improve_opts = options.improve_options;
    if (improve_opts.candidates == nullptr)
      improve_opts.candidates = options.candidates;
    // Each tour is polished independently against the (thread-safe)
    // distance kernel, so fanning out over a pool changes nothing but
    // wall-clock; per-tour gains land in a slot vector and flush serially.
    std::vector<double> gains(result.tours.size(), 0.0);
    const auto polish = [&](std::size_t t) {
      Tour& tour = result.tours[t];
      if (tour.size() < 4) return;
      gains[t] = improve_tour(tour, distances, improve_opts);
      // Or-opt may relocate the segment containing the depot, rotating
      // the closed tour; restore the start-at-own-depot invariant
      // (Theorem 1 structure) — rotation never changes the length.
      auto& order = tour.order();
      const auto root = forest.trees[t].root();
      const auto at = std::find(order.begin(), order.end(), root);
      if (at != order.begin() && at != order.end())
        std::rotate(order.begin(), at, order.end());
    };
    if (polish_pool != nullptr) {
      parallel_for(*polish_pool, 0, result.tours.size(), polish);
    } else {
      serial_for(0, result.tours.size(), polish);
    }
    for (const double gain : gains) {
      MWC_OBS_GAUGE_ADD("tsp.improve_total_gain", gain);
    }
  }

  for (const auto& tour : result.tours)
    result.total_length += tour.length_with(distances);
  MWC_OBS_COUNT_N("tsp.tours_built", result.tours.size());
  result.forest = std::move(forest);
  return result;
}

MultiRootAssignment q_rooted_msf_assign(
    std::size_t num_roots,
    const std::function<double(std::size_t, std::size_t)>& root_dist,
    std::span<const geom::Point> sensors) {
  MWC_ASSERT(num_roots >= 1);
  const std::size_t m = sensors.size();

  MultiRootAssignment result;
  result.groups.assign(num_roots, {});
  if (m == 0) return result;

  std::vector<double> best_root_dist(m,
                                     std::numeric_limits<double>::infinity());
  std::vector<std::size_t> nearest_root(m, 0);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t r = 0; r < num_roots; ++r) {
      const double d = root_dist(r, k);
      if (d < best_root_dist[k]) {
        best_root_dist[k] = d;
        nearest_root[k] = r;
      }
    }
  }

  const auto aux_dist = [&](std::size_t i, std::size_t j) -> double {
    if (i == j) return 0.0;
    if (i == 0) return best_root_dist[j - 1];
    if (j == 0) return best_root_dist[i - 1];
    return geom::distance(sensors[i - 1], sensors[j - 1]);
  };
  const auto mst = graph::prim_mst(m + 1, aux_dist, /*root=*/0);
  result.total_weight = mst.total_weight;

  const auto parent = graph::mst_parents(m + 1, mst.edges, /*root=*/0);
  std::vector<std::size_t> owner(m + 1, num_roots);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t v = 1; v <= m; ++v) {
      if (owner[v] != num_roots) continue;
      if (parent[v] == 0) {
        owner[v] = nearest_root[v - 1];
        changed = true;
      } else if (owner[parent[v]] != num_roots) {
        owner[v] = owner[parent[v]];
        changed = true;
      }
    }
  }
  for (std::size_t v = 1; v <= m; ++v) {
    MWC_DEBUG_ASSERT(owner[v] < num_roots);
    result.groups[owner[v]].push_back(v - 1);
  }
  return result;
}

bool covers_all_sensors(const QRootedInstance& instance,
                        const QRootedTours& tours) {
  const std::size_t q = instance.q();
  if (tours.tours.size() != q) return false;

  std::unordered_set<std::size_t> covered;
  for (std::size_t l = 0; l < q; ++l) {
    const auto& order = tours.tours[l].order();
    if (order.empty() || order.front() != l) return false;
    for (std::size_t v : order) {
      if (v < q) {
        if (v != l) return false;  // tours may contain only their own depot
      } else {
        if (!covered.insert(v).second) return false;  // disjoint on sensors
      }
    }
  }
  return covered.size() == instance.m();
}

}  // namespace mwc::tsp
