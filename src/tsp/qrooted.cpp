#include "tsp/qrooted.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "graph/mst.hpp"
#include "obs/obs.hpp"
#include "tsp/construct.hpp"
#include "tsp/improve.hpp"
#include "util/assert.hpp"

namespace mwc::tsp {

namespace {

/// Flushes a locally accumulated probe count into the global registry,
/// split by whether the kernel served them from the materialized oracle
/// cache ("hits") or recomputed geometry directly ("misses"). One atomic
/// add per construction call — the probe loops themselves stay
/// uninstrumented.
inline void flush_probe_count(const DistanceView& distances,
                              std::uint64_t probes) {
  if (distances.cached()) {
    MWC_OBS_COUNT_N("oracle.probe_hits", probes);
  } else {
    MWC_OBS_COUNT_N("oracle.probe_misses", probes);
  }
#if !MWC_OBS_ENABLED
  (void)distances;
  (void)probes;
#endif
}

}  // namespace

std::vector<geom::Point> CombinedPointsView::materialize() const {
  std::vector<geom::Point> pts;
  pts.reserve(size());
  pts.insert(pts.end(), depots_.begin(), depots_.end());
  pts.insert(pts.end(), sensors_.begin(), sensors_.end());
  return pts;
}

std::vector<geom::Point> QRootedInstance::combined_points() const {
  return points().materialize();
}

QRootedForest q_rooted_msf(const QRootedInstance& instance) {
  return q_rooted_msf(instance.distances(), instance.q());
}

QRootedForest q_rooted_msf(const DistanceView& distances, std::size_t q) {
  MWC_OBS_SCOPE("tsp.q_rooted_msf");
  MWC_ASSERT_MSG(q >= 1, "q-rooted MSF needs at least one depot");
  MWC_ASSERT(q <= distances.size());
  const std::size_t m = distances.size() - q;

  QRootedForest result;
  result.trees.reserve(q);

  if (m == 0) {
    for (std::size_t l = 0; l < q; ++l)
      result.trees.emplace_back(l, std::span<const graph::Edge>{});
    return result;
  }

  MWC_OBS_COUNT("tsp.msf_builds");
  // Probes accumulate in a local and flush once at the end, so the
  // Prim/root-scan inner loops pay no atomic traffic.
  std::uint64_t probes = 0;

  // Auxiliary contracted graph G_r: node 0 is the virtual root r (all q
  // depots merged), nodes 1..m are the sensors. w_r(0, k) is the distance
  // from sensor k to its nearest depot; remember which depot realizes it.
  std::vector<double> root_dist(m, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> nearest_depot(m, 0);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t l = 0; l < q; ++l) {
      const double d = distances(q + k, l);
      if (d < root_dist[k]) {
        root_dist[k] = d;
        nearest_depot[k] = l;
      }
    }
  }
  probes += static_cast<std::uint64_t>(m) * q;

  const auto aux_dist = [&](std::size_t i, std::size_t j) -> double {
    if (i == j) return 0.0;
    if (i == 0) return root_dist[j - 1];
    if (j == 0) return root_dist[i - 1];
    ++probes;
    return distances(q + i - 1, q + j - 1);
  };

  const auto mst = graph::prim_mst_with(m + 1, aux_dist, /*root=*/0);
  flush_probe_count(distances, probes);

  // Un-contract: an MST edge (0, k) becomes (nearest_depot[k-1], sensor).
  // Each subtree hanging off the virtual root attaches through exactly one
  // such edge, so assigning subtree edges to that depot partitions the MST
  // into q depot-rooted trees (possibly several subtrees per depot).
  const auto parent = graph::mst_parents(m + 1, mst.edges, /*root=*/0);

  // owner[aux_node] = depot owning that node's subtree (sensors only).
  std::vector<std::size_t> owner(m + 1, q);
  // Resolve owners top-down: a sensor attached to the root gets its
  // nearest depot; otherwise it inherits its parent's owner. Iterate until
  // fixed point (parents can appear after children in edge order, so walk
  // by increasing depth via repeated sweeps; MST has <= m+1 nodes so the
  // loop is cheap).
  {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t v = 1; v <= m; ++v) {
        if (owner[v] != q) continue;
        if (parent[v] == 0) {
          owner[v] = nearest_depot[v - 1];
          changed = true;
        } else if (owner[parent[v]] != q) {
          owner[v] = owner[parent[v]];
          changed = true;
        }
      }
    }
  }

  // Build per-depot edge lists in combined index space.
  std::vector<std::vector<graph::Edge>> depot_edges(q);
  for (const auto& e : mst.edges) {
    const std::size_t a = e.u;
    const std::size_t b = e.v;
    if (a == 0 || b == 0) {
      const std::size_t s = (a == 0) ? b : a;  // sensor aux index
      const std::size_t depot = nearest_depot[s - 1];
      depot_edges[depot].push_back(
          graph::Edge{depot, q + (s - 1), e.w});
    } else {
      const std::size_t depot = owner[a];
      MWC_DEBUG_ASSERT(owner[a] == owner[b]);
      depot_edges[depot].push_back(
          graph::Edge{q + (a - 1), q + (b - 1), e.w});
    }
  }

  for (std::size_t l = 0; l < q; ++l) {
    result.trees.emplace_back(l, depot_edges[l]);
    result.total_weight += result.trees.back().total_weight();
  }
  MWC_DEBUG_ASSERT(std::abs(result.total_weight - mst.total_weight) <
                   1e-6 * (1.0 + mst.total_weight));
  return result;
}

QRootedTours q_rooted_tsp(const QRootedInstance& instance,
                          const QRootedOptions& options) {
  return q_rooted_tsp(instance.distances(), instance.q(), options);
}

QRootedTours q_rooted_tsp(const DistanceView& distances, std::size_t q,
                          const QRootedOptions& options) {
  MWC_OBS_SCOPE("tsp.q_rooted_tsp");
  const auto forest = q_rooted_msf(distances, q);

  QRootedTours result;
  result.tours.reserve(forest.trees.size());
  for (const auto& tree : forest.trees) {
    Tour tour;
    switch (options.construction) {
      case TourConstruction::kDoubleTree:
        tour = tree_to_tour(tree.edges(), tree.root());
        break;
      case TourConstruction::kChristofides: {
        // Re-solve the group's tour from scratch; the MSF only decides
        // which depot serves which sensors.
        const auto& nodes = tree.nodes();
        std::size_t local_root = 0;
        for (std::size_t k = 0; k < nodes.size(); ++k)
          if (nodes[k] == tree.root()) local_root = k;
        Tour local = christofides_tour(
            distances.sub({nodes.begin(), nodes.end()}), local_root);
        std::vector<std::size_t> order;
        order.reserve(local.size());
        for (std::size_t v : local.order()) order.push_back(nodes[v]);
        tour = Tour(std::move(order));
        break;
      }
    }
    if (options.improve && tour.size() >= 4) {
      const double gain = improve_tour(tour, distances);
      MWC_OBS_GAUGE_ADD("tsp.improve_total_gain", gain);
    }
    result.total_length += tour.length_with(distances);
    result.tours.push_back(std::move(tour));
  }
  MWC_OBS_COUNT_N("tsp.tours_built", result.tours.size());
  return result;
}

MultiRootAssignment q_rooted_msf_assign(
    std::size_t num_roots,
    const std::function<double(std::size_t, std::size_t)>& root_dist,
    std::span<const geom::Point> sensors) {
  MWC_ASSERT(num_roots >= 1);
  const std::size_t m = sensors.size();

  MultiRootAssignment result;
  result.groups.assign(num_roots, {});
  if (m == 0) return result;

  std::vector<double> best_root_dist(m,
                                     std::numeric_limits<double>::infinity());
  std::vector<std::size_t> nearest_root(m, 0);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t r = 0; r < num_roots; ++r) {
      const double d = root_dist(r, k);
      if (d < best_root_dist[k]) {
        best_root_dist[k] = d;
        nearest_root[k] = r;
      }
    }
  }

  const auto aux_dist = [&](std::size_t i, std::size_t j) -> double {
    if (i == j) return 0.0;
    if (i == 0) return best_root_dist[j - 1];
    if (j == 0) return best_root_dist[i - 1];
    return geom::distance(sensors[i - 1], sensors[j - 1]);
  };
  const auto mst = graph::prim_mst(m + 1, aux_dist, /*root=*/0);
  result.total_weight = mst.total_weight;

  const auto parent = graph::mst_parents(m + 1, mst.edges, /*root=*/0);
  std::vector<std::size_t> owner(m + 1, num_roots);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t v = 1; v <= m; ++v) {
      if (owner[v] != num_roots) continue;
      if (parent[v] == 0) {
        owner[v] = nearest_root[v - 1];
        changed = true;
      } else if (owner[parent[v]] != num_roots) {
        owner[v] = owner[parent[v]];
        changed = true;
      }
    }
  }
  for (std::size_t v = 1; v <= m; ++v) {
    MWC_DEBUG_ASSERT(owner[v] < num_roots);
    result.groups[owner[v]].push_back(v - 1);
  }
  return result;
}

bool covers_all_sensors(const QRootedInstance& instance,
                        const QRootedTours& tours) {
  const std::size_t q = instance.q();
  if (tours.tours.size() != q) return false;

  std::unordered_set<std::size_t> covered;
  for (std::size_t l = 0; l < q; ++l) {
    const auto& order = tours.tours[l].order();
    if (order.empty() || order.front() != l) return false;
    for (std::size_t v : order) {
      if (v < q) {
        if (v != l) return false;  // tours may contain only their own depot
      } else {
        if (!covered.insert(v).second) return false;  // disjoint on sensors
      }
    }
  }
  return covered.size() == instance.m();
}

}  // namespace mwc::tsp
