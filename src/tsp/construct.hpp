// Tour construction heuristics.
//
// `double_tree_tour` is the 2-approximation the paper's Algorithm 2 relies
// on (MST -> doubled Euler tour -> shortcut). Nearest-neighbour and
// greedy-edge are classical alternatives used by the ablation benches.
#pragma once

#include <cstddef>
#include <span>

#include "geom/point.hpp"
#include "graph/mst.hpp"
#include "tsp/oracle.hpp"
#include "tsp/tour.hpp"

namespace mwc::tsp {

// The double-tree and Christofides constructors exist in two forms: the
// DistanceView form is the implementation (one distance kernel, cached
// or direct), the point-span form wraps it in a direct-geometry view.
// Results are bit-identical.

/// MST double-tree 2-approximation starting from `start`. O(n^2).
Tour double_tree_tour(const DistanceView& distances, std::size_t start = 0);
Tour double_tree_tour(std::span<const geom::Point> points,
                      std::size_t start = 0);

/// Preorder shortcut of an explicit tree (already rooted at `root`); the
/// q-rooted TSP applies this per depot tree. Node indices are whatever the
/// edge list uses.
Tour tree_to_tour(std::span<const graph::Edge> tree_edges, std::size_t root);

/// Christofides-style construction: MST + a matching on the odd-degree
/// vertices + Eulerian shortcut. The matching is greedy (shortest
/// compatible pair first) rather than minimum-weight perfect matching, so
/// the classical 1.5 guarantee weakens to 2 — but the constant observed
/// in practice sits well below the double-tree's. O(n^2 log n).
Tour christofides_tour(const DistanceView& distances, std::size_t start = 0);
Tour christofides_tour(std::span<const geom::Point> points,
                       std::size_t start = 0);

/// Nearest-neighbour construction from `start`. O(n^2).
Tour nearest_neighbor_tour(std::span<const geom::Point> points,
                           std::size_t start = 0);

/// Greedy edge matching: repeatedly adds the globally shortest edge that
/// keeps degrees <= 2 and forms no premature cycle. O(n^2 log n).
Tour greedy_edge_tour(std::span<const geom::Point> points);

}  // namespace mwc::tsp
