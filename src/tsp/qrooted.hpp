// Algorithms 1 and 2 of the paper: the exact q-rooted minimum spanning
// forest and the 2-approximate q-rooted TSP.
//
// Instance convention: nodes are indexed in a combined space where indices
// 0..q-1 are the q depots and q..q+m-1 are the m to-be-charged sensors.
// All edge lists, trees, and tours returned here use combined indices.
//
//   q-rooted MSF (exact, Lemma 1):
//     contract the q depots into one virtual root, take the MST of the
//     contracted complete graph, and un-contract — each virtual-root edge
//     maps back to the depot realizing the minimum distance.
//
//   q-rooted TSP (2-approximation, Theorem 1):
//     double each MSF tree's edges, take the Eulerian circuit, shortcut
//     repeated nodes. Each resulting closed tour contains its own depot
//     and the q tours jointly cover all sensors.
//
// Both stages accept an optional CandidateGraph over the combined node
// space (see candidates.hpp). The MSF then runs a lazy-heap Prim that
// only relaxes candidate sensor-sensor edges plus the virtual root's star
// (nearest-depot distance to every sensor, which keeps the pruned graph
// connected), and the polishers scan only candidate edges — the tour
// pipeline drops from O(n²) to O(n·k). The dense paths remain and serve
// as the golden reference; a complete candidate graph dispatches to them
// for bit-identical results.
#pragma once

#include <cstddef>
#include <functional>
#include <iterator>
#include <span>
#include <vector>

#include "geom/point.hpp"
#include "graph/forest.hpp"
#include "tsp/candidates.hpp"
#include "tsp/improve.hpp"
#include "tsp/oracle.hpp"
#include "tsp/tour.hpp"

namespace mwc {
class ThreadPool;
}

namespace mwc::tsp {

/// Random-access, non-owning view of an instance's points in combined
/// order (depots first, then sensors). Valid as long as the backing
/// depot/sensor vectors are.
class CombinedPointsView {
 public:
  CombinedPointsView() = default;
  CombinedPointsView(std::span<const geom::Point> depots,
                     std::span<const geom::Point> sensors)
      : depots_(depots), sensors_(sensors) {}

  std::size_t size() const noexcept { return depots_.size() + sensors_.size(); }
  bool empty() const noexcept { return size() == 0; }

  const geom::Point& operator[](std::size_t i) const noexcept {
    return i < depots_.size() ? depots_[i] : sensors_[i - depots_.size()];
  }

  std::span<const geom::Point> depots() const noexcept { return depots_; }
  std::span<const geom::Point> sensors() const noexcept { return sensors_; }

  /// Direct-geometry distance kernel over this view's combined space.
  DistanceView distances() const {
    return DistanceView::direct(depots_, sensors_);
  }

  /// Materializes the combined order into a contiguous vector (for APIs
  /// that genuinely need a std::span of points).
  std::vector<geom::Point> materialize() const;

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = geom::Point;
    using difference_type = std::ptrdiff_t;
    using pointer = const geom::Point*;
    using reference = const geom::Point&;

    iterator() = default;
    iterator(const CombinedPointsView* view, std::size_t index)
        : view_(view), index_(index) {}

    reference operator*() const { return (*view_)[index_]; }
    pointer operator->() const { return &(*view_)[index_]; }
    iterator& operator++() {
      ++index_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++index_;
      return copy;
    }
    bool operator==(const iterator& o) const = default;

   private:
    const CombinedPointsView* view_ = nullptr;
    std::size_t index_ = 0;
  };

  iterator begin() const { return {this, 0}; }
  iterator end() const { return {this, size()}; }

 private:
  std::span<const geom::Point> depots_;
  std::span<const geom::Point> sensors_;
};

/// A q-rooted instance: depot positions plus sensor positions.
struct QRootedInstance {
  std::vector<geom::Point> depots;
  std::vector<geom::Point> sensors;

  std::size_t q() const noexcept { return depots.size(); }
  std::size_t m() const noexcept { return sensors.size(); }
  std::size_t total_nodes() const noexcept { return q() + m(); }

  /// Position of combined-index node i.
  const geom::Point& point(std::size_t i) const noexcept {
    return i < depots.size() ? depots[i] : sensors[i - depots.size()];
  }

  /// All positions in combined order (depots first), as a zero-copy view.
  CombinedPointsView points() const noexcept { return {depots, sensors}; }

  /// Direct-geometry distance kernel over the combined space.
  DistanceView distances() const { return points().distances(); }
};

/// Result of Algorithm 1. trees[l] is rooted at depot l (combined index l);
/// depots that serve no sensors get an empty tree of just their root.
struct QRootedForest {
  std::vector<graph::RootedTree> trees;
  double total_weight = 0.0;
};

/// Exact q-rooted MSF (Algorithm 1). Requires q >= 1. O((q + m)^2).
QRootedForest q_rooted_msf(const QRootedInstance& instance);

/// Exact q-rooted MSF over any distance kernel whose combined node space
/// has nodes 0..q-1 as depots (e.g. a DistanceOracle::dispatch_view).
/// Bit-exact with the instance overload for equal distances.
QRootedForest q_rooted_msf(const DistanceView& distances, std::size_t q);

/// Candidate-pruned q-rooted MSF: Prim relaxes only candidate
/// sensor-sensor edges plus the virtual root's nearest-depot star, via a
/// lazy binary heap — O((m·k + m) log m) instead of O(m²). `candidates`
/// must cover the combined node space; null or complete() dispatches to
/// the dense sweep (bit-identical). With `verify_against_dense` the dense
/// forest is also computed and silently substituted (counting one
/// `tsp.msf_prune_fallbacks`) whenever the pruned weight exceeds it — the
/// correctness escape hatch; tests pin weight equality on Euclidean
/// instances at k ≈ 10.
QRootedForest q_rooted_msf(const DistanceView& distances, std::size_t q,
                           const CandidateGraph* candidates,
                           bool verify_against_dense = false);

/// Dirty-region repair of a q-rooted MSF. The base forest must live in
/// the *current* combined node space (when a patch removed/added nodes,
/// the caller remaps surviving tree edges first). Trees flagged dirty
/// are discarded and their sensors re-spanned; clean trees are kept
/// verbatim and treated as part of the contracted virtual root, so a
/// re-spanned sensor may attach to a depot directly or graft onto a
/// clean tree through one of its sensors.
struct MsfRepairPlan {
  /// Per-depot dirty flags (size q). A depot whose root is inactive
  /// must be flagged dirty (its sensors are re-homed elsewhere).
  std::vector<char> tree_dirty;
  /// Per-depot availability (size q, or empty for "all active"). An
  /// inactive depot keeps its combined index but attracts no sensors —
  /// the charger_down case. At least one depot must stay active.
  std::vector<char> root_active;
  /// Combined-space sensor ids in no base tree (nodes a patch added).
  std::vector<std::size_t> extra_sensors;
};

struct MsfRepairStats {
  std::size_t dirty_sensors = 0;  ///< sensors re-spanned by the repair
  std::size_t reused_trees = 0;   ///< clean trees copied verbatim
  std::size_t rebuilt_trees = 0;  ///< dirty or edge-gaining trees
  /// Per-depot flag (size q): 1 when the tree was rebuilt (it was dirty
  /// or gained grafted edges), 0 when copied verbatim from the base.
  std::vector<char> tree_changed;
};

/// Re-runs candidate-pruned Prim only over the dirty region (sensors of
/// dirty trees plus extra_sensors), attaching it to the clean remainder,
/// and merges the result with the untouched trees. With every tree dirty
/// this degenerates to a full (active-root) MSF, so it is total; with a
/// local patch it costs O(|dirty|·k log |dirty|) instead of O(m²).
/// Counts `tsp.repair.*` telemetry. `candidates` (over the combined
/// space) prunes both the dirty-dirty edges and the graft scan; null
/// scans densely (exact).
QRootedForest repair_q_rooted_msf(const DistanceView& distances,
                                  std::size_t q, const QRootedForest& base,
                                  const MsfRepairPlan& plan,
                                  const CandidateGraph* candidates = nullptr,
                                  MsfRepairStats* stats = nullptr);

/// Result of Algorithm 2. tours[l] starts at depot l; a tour of size one
/// (just the depot) means charger l stays home. Lengths use the Euclidean
/// metric on the instance points.
struct QRootedTours {
  std::vector<Tour> tours;
  double total_length = 0.0;
  /// The MSF the tours were built from (combined node space) — kept so
  /// incremental re-planning can key its dirty-region repair off the
  /// existing forest instead of re-deriving it.
  QRootedForest forest;
};

enum class TourConstruction {
  /// The paper's Algorithm 2: double each MSF tree, Euler tour, shortcut.
  kDoubleTree,
  /// Library extension: keep the MSF's sensor-to-depot grouping but build
  /// each group's tour with christofides_tour (ablation A7).
  kChristofides,
};

struct QRootedOptions {
  /// Apply 2-opt/Or-opt to each tour after construction (library
  /// extension, off by default to match the paper).
  bool improve = false;
  TourConstruction construction = TourConstruction::kDoubleTree;

  /// Polisher knobs. Its `candidates` pointer, when null, inherits the
  /// `candidates` graph below, so one graph drives both stages.
  ImproveOptions improve_options;

  /// Route the MSF through the candidate-pruned Prim (requires a usable
  /// `candidates` graph, else silently dense).
  bool candidate_msf = false;

  /// Escape hatch for candidate_msf: cross-check against the dense forest
  /// and fall back when the pruned weight is worse.
  bool verify_candidate_msf = false;

  /// Shared k-nearest-neighbor graph over the *combined* node space
  /// (depots + sensors). Non-owning; null means "dense everywhere",
  /// except that the instance overload builds one on demand when
  /// candidate_msf explicitly opts in (plain `improve` stays bit-exact
  /// with the DistanceView overload, which has no geometry to build
  /// from — supply a graph to get candidate-mode polish there).
  const CandidateGraph* candidates = nullptr;

  /// Build parameters for the on-demand graph of the instance overload.
  CandidateOptions candidate_options;
};

/// 2-approximate q-rooted TSP (Algorithm 2). Requires q >= 1. Builds a
/// CandidateGraph over the combined points on demand when `options`
/// opts into candidate_msf without supplying one.
QRootedTours q_rooted_tsp(const QRootedInstance& instance,
                          const QRootedOptions& options = {});

/// 2-approximate q-rooted TSP over any distance kernel whose combined
/// node space has nodes 0..q-1 as depots. Tour node indices are local to
/// the view. Bit-exact with the instance overload for equal distances.
/// A non-null `polish_pool` runs the per-tour improvement phase across
/// the pool (one task per tour; results are deterministic because each
/// tour is polished independently). Callers already running inside a pool
/// task must pass null — nested parallel_for deadlocks a saturated pool.
QRootedTours q_rooted_tsp(const DistanceView& distances, std::size_t q,
                          const QRootedOptions& options = {},
                          ThreadPool* polish_pool = nullptr);

/// Validates the Theorem-1 structural guarantees: each tour is closed
/// through its own depot, tours are node-disjoint on sensors, and their
/// union covers every sensor. Test/assert helper.
bool covers_all_sensors(const QRootedInstance& instance,
                        const QRootedTours& tours);

/// Generalized q-rooted MSF where each "root" is an arbitrary entity with
/// a caller-supplied distance to every sensor (the variable-cycle
/// heuristic's auxiliary graphs G^(k) use whole *schedulings* as roots,
/// with root-to-sensor distance = nearest node of that scheduling).
///
/// Runs the same contraction: one virtual root whose distance to sensor s
/// is min over roots of root_dist(r, s); MST; un-contract. Returns which
/// sensors belong to each root's tree plus the forest weight. `groups[r]`
/// lists local sensor indices (0..m-1).
struct MultiRootAssignment {
  std::vector<std::vector<std::size_t>> groups;
  double total_weight = 0.0;
};

MultiRootAssignment q_rooted_msf_assign(
    std::size_t num_roots,
    const std::function<double(std::size_t, std::size_t)>& root_dist,
    std::span<const geom::Point> sensors);

}  // namespace mwc::tsp
