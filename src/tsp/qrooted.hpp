// Algorithms 1 and 2 of the paper: the exact q-rooted minimum spanning
// forest and the 2-approximate q-rooted TSP.
//
// Instance convention: nodes are indexed in a combined space where indices
// 0..q-1 are the q depots and q..q+m-1 are the m to-be-charged sensors.
// All edge lists, trees, and tours returned here use combined indices.
//
//   q-rooted MSF (exact, Lemma 1):
//     contract the q depots into one virtual root, take the MST of the
//     contracted complete graph, and un-contract — each virtual-root edge
//     maps back to the depot realizing the minimum distance.
//
//   q-rooted TSP (2-approximation, Theorem 1):
//     double each MSF tree's edges, take the Eulerian circuit, shortcut
//     repeated nodes. Each resulting closed tour contains its own depot
//     and the q tours jointly cover all sensors.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "geom/point.hpp"
#include "graph/forest.hpp"
#include "tsp/tour.hpp"

namespace mwc::tsp {

/// A q-rooted instance: depot positions plus sensor positions.
struct QRootedInstance {
  std::vector<geom::Point> depots;
  std::vector<geom::Point> sensors;

  std::size_t q() const noexcept { return depots.size(); }
  std::size_t m() const noexcept { return sensors.size(); }
  std::size_t total_nodes() const noexcept { return q() + m(); }

  /// Position of combined-index node i.
  const geom::Point& point(std::size_t i) const noexcept {
    return i < depots.size() ? depots[i] : sensors[i - depots.size()];
  }

  /// All positions in combined order (depots first). O(q + m) copy.
  std::vector<geom::Point> combined_points() const;
};

/// Result of Algorithm 1. trees[l] is rooted at depot l (combined index l);
/// depots that serve no sensors get an empty tree of just their root.
struct QRootedForest {
  std::vector<graph::RootedTree> trees;
  double total_weight = 0.0;
};

/// Exact q-rooted MSF (Algorithm 1). Requires q >= 1. O((q + m)^2).
QRootedForest q_rooted_msf(const QRootedInstance& instance);

/// Result of Algorithm 2. tours[l] starts at depot l; a tour of size one
/// (just the depot) means charger l stays home. Lengths use the Euclidean
/// metric on the instance points.
struct QRootedTours {
  std::vector<Tour> tours;
  double total_length = 0.0;
};

enum class TourConstruction {
  /// The paper's Algorithm 2: double each MSF tree, Euler tour, shortcut.
  kDoubleTree,
  /// Library extension: keep the MSF's sensor-to-depot grouping but build
  /// each group's tour with christofides_tour (ablation A7).
  kChristofides,
};

struct QRootedOptions {
  /// Apply 2-opt/Or-opt to each tour after construction (library
  /// extension, off by default to match the paper).
  bool improve = false;
  TourConstruction construction = TourConstruction::kDoubleTree;
};

/// 2-approximate q-rooted TSP (Algorithm 2). Requires q >= 1.
QRootedTours q_rooted_tsp(const QRootedInstance& instance,
                          const QRootedOptions& options = {});

/// Validates the Theorem-1 structural guarantees: each tour is closed
/// through its own depot, tours are node-disjoint on sensors, and their
/// union covers every sensor. Test/assert helper.
bool covers_all_sensors(const QRootedInstance& instance,
                        const QRootedTours& tours);

/// Generalized q-rooted MSF where each "root" is an arbitrary entity with
/// a caller-supplied distance to every sensor (the variable-cycle
/// heuristic's auxiliary graphs G^(k) use whole *schedulings* as roots,
/// with root-to-sensor distance = nearest node of that scheduling).
///
/// Runs the same contraction: one virtual root whose distance to sensor s
/// is min over roots of root_dist(r, s); MST; un-contract. Returns which
/// sensors belong to each root's tree plus the forest weight. `groups[r]`
/// lists local sensor indices (0..m-1).
struct MultiRootAssignment {
  std::vector<std::vector<std::size_t>> groups;
  double total_weight = 0.0;
};

MultiRootAssignment q_rooted_msf_assign(
    std::size_t num_roots,
    const std::function<double(std::size_t, std::size_t)>& root_dist,
    std::span<const geom::Point> sensors);

}  // namespace mwc::tsp
