// Exact solvers for small instances, used by the property tests to verify
// Lemma 1 (MSF optimality) and Theorem 1 (2-approximation bound), and by
// the optional optimal baseline on toy networks.
#pragma once

#include <cstddef>
#include <span>

#include "geom/point.hpp"
#include "tsp/qrooted.hpp"
#include "tsp/tour.hpp"

namespace mwc::tsp {

/// Optimal TSP tour via Held-Karp dynamic programming. O(2^n n^2); n <= 20
/// enforced. Returns the optimal closed tour starting at node 0.
Tour held_karp_tsp(std::span<const geom::Point> points);

/// Optimal closed-tour length through `subset` of `points` that must also
/// include `anchor` (an index into points). Helper for the q-rooted brute
/// force. The subset must not contain the anchor.
double held_karp_anchored_length(std::span<const geom::Point> points,
                                 std::size_t anchor,
                                 std::span<const std::size_t> subset);

/// Optimal q-rooted TSP by enumerating all q^m sensor->depot assignments
/// and solving each depot's tour exactly. Exponential; m <= 10 and
/// q^m <= ~2e6 enforced. Returns the optimal total length.
double brute_force_q_rooted_tsp(const QRootedInstance& instance);

/// Optimal q-rooted MSF total weight by enumerating all q^m assignments
/// and taking each group's anchored MST. Exponential; same limits.
double brute_force_q_rooted_msf(const QRootedInstance& instance);

}  // namespace mwc::tsp
