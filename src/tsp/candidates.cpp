#include "tsp/candidates.hpp"

#include <algorithm>

#include "geom/bbox.hpp"
#include "geom/grid_index.hpp"
#include "geom/kdtree.hpp"
#include "geom/simd.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mwc::tsp {

namespace {

/// Writes the self-excluded k-nearest row for node i. The spatial index
/// is queried for k+1 neighbors because node i itself (distance 0) is
/// among them; any *other* zero-distance duplicate stays a legitimate
/// candidate.
template <typename KnnFn>
void fill_row(std::size_t i, std::size_t k, const KnnFn& knn,
              std::vector<std::size_t>& flat) {
  const auto hits = knn(k + 1);
  std::size_t written = 0;
  for (const auto& [idx, dist] : hits) {
    (void)dist;
    if (idx == i) continue;
    flat[i * k + written] = idx;
    if (++written == k) break;
  }
  MWC_ASSERT_MSG(written == k, "knearest returned too few neighbors");
}

}  // namespace

CandidateGraph CandidateGraph::repair(const CandidateGraph& base,
                                      std::span<const geom::Point> new_points,
                                      const CandidateRemap& remap,
                                      const CandidateOptions& options) {
  MWC_ASSERT_MSG(remap.old_to_new.size() == base.size(),
                 "remap.old_to_new size mismatch");
  MWC_ASSERT_MSG(remap.new_size == new_points.size(),
                 "remap.new_size mismatch");
  const std::size_t n = new_points.size();
  const std::size_t k = n > 0 ? std::min(options.k, n - 1) : 0;
  // A k regime change (tiny instances, or the base was complete) shifts
  // every row; fall back to the full build.
  if (base.empty() || k != base.k() || base.complete())
    return build(new_points, options);

  MWC_OBS_SCOPE("tsp.cand_repair");
  MWC_OBS_COUNT("tsp.cand.repairs");

  std::vector<std::size_t> new_to_old(n, CandidateRemap::kRemoved);
  for (std::size_t i = 0; i < remap.old_to_new.size(); ++i) {
    const std::size_t ni = remap.old_to_new[i];
    if (ni == CandidateRemap::kRemoved) continue;
    MWC_ASSERT_MSG(ni < n, "remap.old_to_new out of range");
    new_to_old[ni] = i;
  }
  std::vector<char> is_fresh(n, 0);
  for (std::size_t f : remap.fresh) {
    MWC_ASSERT_MSG(f < n, "remap.fresh out of range");
    is_fresh[f] = 1;
  }

  CandidateGraph graph;
  graph.n_ = n;
  graph.k_ = k;
  graph.flat_.assign(n * k, 0);

  // Fresh-point coordinates, deinterleaved once: the break-in scan below
  // evaluates every clean row against the same fresh set, so it becomes
  // one SIMD squared-distance row per survivor.
  const std::size_t nf = remap.fresh.size();
  std::vector<double> fx(nf), fy(nf), fd2(nf);
  for (std::size_t t = 0; t < nf; ++t) {
    fx[t] = new_points[remap.fresh[t]].x;
    fy[t] = new_points[remap.fresh[t]].y;
  }

  const geom::KdTree index(new_points);
  std::size_t repaired = 0;
  std::vector<std::size_t> row(k);
  for (std::size_t v = 0; v < n; ++v) {
    bool dirty = new_to_old[v] == CandidateRemap::kRemoved || is_fresh[v];
    if (!dirty) {
      const auto old_row = base.neighbors(new_to_old[v]);
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t nn = remap.old_to_new[old_row[j]];
        if (nn == CandidateRemap::kRemoved || is_fresh[nn]) {
          dirty = true;
          break;
        }
        row[j] = nn;
      }
    }
    if (!dirty) {
      // Survivor distances are unchanged and compaction preserves index
      // order, so the remapped row stays sorted; it is exact unless a
      // fresh point now beats its k-th entry (ties break on index). One
      // batched squared-distance row over the fresh set, then the
      // original comparison loop in the original order (bit-identical —
      // the kernel's per-lane arithmetic is geom::distance2).
      const double kth = geom::distance2(new_points[v], new_points[row[k - 1]]);
      geom::simd::distance2_row(new_points[v].x, new_points[v].y, fx.data(),
                                fy.data(), fd2.data(), nf);
      for (std::size_t t = 0; t < nf; ++t) {
        const std::size_t f = remap.fresh[t];
        if (f == v) continue;
        if (fd2[t] < kth || (fd2[t] == kth && f < row[k - 1])) {
          dirty = true;
          break;
        }
      }
    }
    if (dirty) {
      ++repaired;
      fill_row(v, k,
               [&](std::size_t kk) { return index.knearest(new_points[v], kk); },
               graph.flat_);
    } else {
      std::copy(row.begin(), row.end(), graph.flat_.begin() + v * k);
    }
  }
  MWC_OBS_COUNT_N("tsp.cand.repaired_rows", repaired);
  MWC_OBS_COUNT_N("tsp.cand.reused_rows", n - repaired);
  return graph;
}

CandidateGraph CandidateGraph::build(std::span<const geom::Point> points,
                                     const CandidateOptions& options) {
  MWC_OBS_SCOPE("tsp.cand_build");
  MWC_OBS_COUNT("tsp.cand.rebuilds");
  CandidateGraph graph;
  graph.n_ = points.size();
  graph.k_ = graph.n_ > 0 ? std::min(options.k, graph.n_ - 1) : 0;
  if (graph.k_ == 0) return graph;
  graph.flat_.assign(graph.n_ * graph.k_, 0);

  const bool use_grid = options.backend == CandidateOptions::Backend::kGrid;
  if (use_grid) {
    const geom::GridIndex index(points,
                                geom::BBox::of(points.begin(), points.end()),
                                options.grid_target_per_cell);
    for (std::size_t i = 0; i < graph.n_; ++i)
      fill_row(i, graph.k_,
               [&](std::size_t k) { return index.knearest(points[i], k); },
               graph.flat_);
  } else {
    const geom::KdTree index(points);
    for (std::size_t i = 0; i < graph.n_; ++i)
      fill_row(i, graph.k_,
               [&](std::size_t k) { return index.knearest(points[i], k); },
               graph.flat_);
  }
  return graph;
}

}  // namespace mwc::tsp
