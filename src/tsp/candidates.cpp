#include "tsp/candidates.hpp"

#include "geom/bbox.hpp"
#include "geom/grid_index.hpp"
#include "geom/kdtree.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mwc::tsp {

namespace {

/// Writes the self-excluded k-nearest row for node i. The spatial index
/// is queried for k+1 neighbors because node i itself (distance 0) is
/// among them; any *other* zero-distance duplicate stays a legitimate
/// candidate.
template <typename KnnFn>
void fill_row(std::size_t i, std::size_t k, const KnnFn& knn,
              std::vector<std::size_t>& flat) {
  const auto hits = knn(k + 1);
  std::size_t written = 0;
  for (const auto& [idx, dist] : hits) {
    (void)dist;
    if (idx == i) continue;
    flat[i * k + written] = idx;
    if (++written == k) break;
  }
  MWC_ASSERT_MSG(written == k, "knearest returned too few neighbors");
}

}  // namespace

CandidateGraph CandidateGraph::build(std::span<const geom::Point> points,
                                     const CandidateOptions& options) {
  MWC_OBS_SCOPE("tsp.cand_build");
  MWC_OBS_COUNT("tsp.cand.rebuilds");
  CandidateGraph graph;
  graph.n_ = points.size();
  graph.k_ = graph.n_ > 0 ? std::min(options.k, graph.n_ - 1) : 0;
  if (graph.k_ == 0) return graph;
  graph.flat_.assign(graph.n_ * graph.k_, 0);

  const bool use_grid = options.backend == CandidateOptions::Backend::kGrid;
  if (use_grid) {
    const geom::GridIndex index(points,
                                geom::BBox::of(points.begin(), points.end()),
                                options.grid_target_per_cell);
    for (std::size_t i = 0; i < graph.n_; ++i)
      fill_row(i, graph.k_,
               [&](std::size_t k) { return index.knearest(points[i], k); },
               graph.flat_);
  } else {
    const geom::KdTree index(points);
    for (std::size_t i = 0; i < graph.n_; ++i)
      fill_row(i, graph.k_,
               [&](std::size_t k) { return index.knearest(points[i], k); },
               graph.flat_);
  }
  return graph;
}

}  // namespace mwc::tsp
