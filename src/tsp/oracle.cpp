#include "tsp/oracle.hpp"

#include "geom/simd.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mwc::tsp {

namespace {

std::vector<geom::Point> concatenate(std::span<const geom::Point> depots,
                                     std::span<const geom::Point> sensors) {
  std::vector<geom::Point> pts;
  pts.reserve(depots.size() + sensors.size());
  pts.insert(pts.end(), depots.begin(), depots.end());
  pts.insert(pts.end(), sensors.begin(), sensors.end());
  return pts;
}

bool is_identity(const std::vector<std::size_t>& map) {
  for (std::size_t i = 0; i < map.size(); ++i)
    if (map[i] != i) return false;
  return true;
}

}  // namespace

DistanceView DistanceView::direct(std::span<const geom::Point> points) {
  DistanceView view;
  view.head_ = points;
  view.size_ = points.size();
  return view;
}

DistanceView DistanceView::direct(std::span<const geom::Point> head,
                                  std::span<const geom::Point> tail) {
  DistanceView view;
  view.head_ = head;
  view.tail_ = tail;
  view.size_ = head.size() + tail.size();
  return view;
}

void DistanceView::distances_to(std::size_t i, std::span<const std::size_t> js,
                                double* out) const {
  const std::size_t a = map_.empty() ? i : map_[i];
  if (oracle_ != nullptr) {
    // One (vectorized) row materialization, then a straight gather.
    const std::span<const double> row = oracle_->row(a);
    if (map_.empty()) {
      for (std::size_t k = 0; k < js.size(); ++k) out[k] = row[js[k]];
    } else {
      for (std::size_t k = 0; k < js.size(); ++k) out[k] = row[map_[js[k]]];
    }
    return;
  }
  // Direct geometry: gather coordinates once, run one row kernel.
  thread_local std::vector<double> gx, gy;
  gx.resize(js.size());
  gy.resize(js.size());
  for (std::size_t k = 0; k < js.size(); ++k) {
    const geom::Point& t = backing_point(map_.empty() ? js[k] : map_[js[k]]);
    gx[k] = t.x;
    gy[k] = t.y;
  }
  const geom::Point& p = backing_point(a);
  geom::simd::distance_row(p.x, p.y, gx.data(), gy.data(), out, js.size());
}

void DistanceView::distances_pairs(std::span<const std::size_t> as,
                                   std::span<const std::size_t> bs,
                                   double* out) const {
  MWC_DEBUG_ASSERT(as.size() == bs.size());
  if (oracle_ != nullptr) {
    // Pairs hit arbitrary rows; cached lookups are already plain loads
    // once their rows exist, so there is nothing to vectorize here.
    for (std::size_t k = 0; k < as.size(); ++k) out[k] = (*this)(as[k], bs[k]);
    return;
  }
  thread_local std::vector<double> gax, gay, gbx, gby;
  gax.resize(as.size());
  gay.resize(as.size());
  gbx.resize(as.size());
  gby.resize(as.size());
  for (std::size_t k = 0; k < as.size(); ++k) {
    const geom::Point& pa = backing_point(map_.empty() ? as[k] : map_[as[k]]);
    const geom::Point& pb = backing_point(map_.empty() ? bs[k] : map_[bs[k]]);
    gax[k] = pa.x;
    gay[k] = pa.y;
    gbx[k] = pb.x;
    gby[k] = pb.y;
  }
  geom::simd::distance_pairs(gax.data(), gay.data(), gbx.data(), gby.data(),
                             out, as.size());
}

DistanceView DistanceView::sub(std::vector<std::size_t> locals) const {
  DistanceView view;
  view.oracle_ = oracle_;
  view.head_ = head_;
  view.tail_ = tail_;
  view.size_ = locals.size();
  if (map_.empty()) {
    view.map_ = std::move(locals);
  } else {
    view.map_.reserve(locals.size());
    for (std::size_t local : locals) {
      MWC_DEBUG_ASSERT(local < size_);
      view.map_.push_back(map_[local]);
    }
  }
  // An identity map is pure per-probe overhead; the empty map means the
  // same thing for free.
  if (is_identity(view.map_)) view.map_.clear();
  return view;
}

DistanceOracle::DistanceOracle(std::span<const geom::Point> depots,
                               std::span<const geom::Point> sensors)
    : q_(depots.size()), matrix_(concatenate(depots, sensors)) {}

DistanceOracle::DistanceOracle(std::vector<geom::Point> points,
                               std::size_t num_depots)
    : q_(num_depots), matrix_(std::move(points)) {
  MWC_ASSERT(q_ <= matrix_.size());
}

DistanceView DistanceOracle::view() const {
  DistanceView view;
  view.oracle_ = this;
  view.size_ = size();
  return view;
}

DistanceView DistanceOracle::submatrix(std::vector<std::size_t> subset) const {
  DistanceView view;
  view.oracle_ = this;
  view.size_ = subset.size();
  if (!is_identity(subset)) view.map_ = std::move(subset);
  for ([[maybe_unused]] std::size_t i : view.map_)
    MWC_DEBUG_ASSERT(i < size());
  return view;
}

DistanceView DistanceOracle::dispatch_view(
    std::span<const std::size_t> sensor_ids) const {
  MWC_OBS_COUNT("oracle.dispatch_views");
  std::vector<std::size_t> subset;
  subset.reserve(q_ + sensor_ids.size());
  for (std::size_t l = 0; l < q_; ++l) subset.push_back(l);
  for (std::size_t id : sensor_ids) {
    MWC_DEBUG_ASSERT(q_ + id < size());
    subset.push_back(q_ + id);
  }
  return submatrix(std::move(subset));
}

}  // namespace mwc::tsp
