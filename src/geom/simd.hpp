// Portable SIMD distance kernels over structure-of-arrays coordinates.
//
// Three batch primitives cover every hot distance loop in the pipeline:
//
//   * distance_row   — one query point against a contiguous coordinate
//                      block (oracle row fills, MSF root scans);
//   * distance2_row  — the same without the sqrt (k-NN refinement,
//                      candidate-repair break-in scans);
//   * distance_pairs — elementwise distance between two gathered
//                      coordinate blocks (2-opt/Or-opt gain batches).
//
// Backends: AVX-512F (8 lanes), AVX2 (4), SSE2 (2), NEON (2), selected
// once at startup by runtime CPU detection on x86 (compile-time on ARM),
// with a scalar loop fallback. Every lane evaluates
// sqrt(squared_norm(dx, dy)) — the exact arithmetic of geom::distance —
// using only IEEE-correctly-rounded sub/mul/add/sqrt and no FMA
// contraction, so all backends and the scalar fallback are bit-identical
// (pinned by tests/geom/simd_test.cpp).
//
// Kill switches, mirroring the MWC_OBS pattern:
//   * compile time — CMake -DMWC_SIMD=OFF defines MWC_SIMD_ENABLED=0 and
//     every entry point becomes the scalar loop;
//   * runtime — set_enabled(false) forces scalar dispatch, which is how
//     benches and tests compare the two paths in one process.
//
// Telemetry: `geom.simd.lanes` (gauge, active lane width),
// `geom.simd.rows_vectorized` / `geom.simd.scalar_fallbacks` (counters,
// one per batch call by which path served it).
#pragma once

#include <cstddef>

#ifndef MWC_SIMD_ENABLED
#define MWC_SIMD_ENABLED 1
#endif

namespace mwc::geom::simd {

/// False when the library was built with -DMWC_SIMD=OFF.
bool compiled_in() noexcept;

/// True when batch calls dispatch to a vector backend: compiled in,
/// runtime-enabled, and a wider-than-scalar backend is available.
bool enabled() noexcept;

/// Runtime kill switch (default on). Off forces every batch call through
/// the scalar loop — the tool benches/tests use to time or cross-check
/// both paths in one process. No-op when compiled out.
void set_enabled(bool on) noexcept;

/// Doubles per vector on the active backend (1 when scalar).
unsigned lanes() noexcept;

/// Active backend name: "avx512" | "avx2" | "sse2" | "neon" | "scalar".
const char* backend() noexcept;

/// out[j] = sqrt((xs[j]-qx)^2 + (ys[j]-qy)^2) for j in [0, n).
void distance_row(double qx, double qy, const double* xs, const double* ys,
                  double* out, std::size_t n);

/// out[j] = (xs[j]-qx)^2 + (ys[j]-qy)^2 for j in [0, n).
void distance2_row(double qx, double qy, const double* xs, const double* ys,
                   double* out, std::size_t n);

/// out[j] = sqrt((ax[j]-bx[j])^2 + (ay[j]-by[j])^2) for j in [0, n).
void distance_pairs(const double* ax, const double* ay, const double* bx,
                    const double* by, double* out, std::size_t n);

}  // namespace mwc::geom::simd
