// Static 2-d kd-tree with nearest-neighbour and range queries. Built once
// over an immutable point set (median splits, implicit balanced layout).
// Complements geom/grid_index.hpp: the grid wins on uniform deployments,
// the kd-tree on clustered ones; bench/micro_spatial quantifies this.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.hpp"

namespace mwc::geom {

class KdTree {
 public:
  KdTree() = default;

  /// Builds a balanced tree in O(n log n).
  explicit KdTree(std::span<const Point> points);

  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }

  /// Index (into the original point span) of the nearest point; size()
  /// when empty.
  std::size_t nearest(const Point& query) const;

  std::pair<std::size_t, double> nearest_with_distance(
      const Point& query) const;

  /// The k points nearest to `query`, sorted by ascending distance (ties
  /// broken by ascending index). Returns fewer than k pairs when the tree
  /// holds fewer points. Each pair is (original index, distance).
  std::vector<std::pair<std::size_t, double>> knearest(const Point& query,
                                                       std::size_t k) const;

  /// Indices of all points within `radius` of `query` (unsorted).
  std::vector<std::size_t> within(const Point& query, double radius) const;

 private:
  struct Node {
    Point p;
    std::size_t original_index = 0;
    int axis = 0;  // 0 = x, 1 = y
    std::size_t left = kNull;
    std::size_t right = kNull;
  };
  static constexpr std::size_t kNull = static_cast<std::size_t>(-1);

  std::size_t build(std::vector<std::size_t>& idx, std::size_t lo,
                    std::size_t hi, int depth);
  void nn_search(std::size_t node, const Point& query, std::size_t& best,
                 double& best_d2) const;
  void knn_search(std::size_t node, const Point& query, std::size_t k,
                  std::vector<std::pair<double, std::size_t>>& heap) const;
  void range_search(std::size_t node, const Point& query, double r2,
                    std::vector<std::size_t>& out) const;

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  std::size_t root_ = kNull;
};

}  // namespace mwc::geom
