#include "geom/distance.hpp"

#include "util/assert.hpp"

namespace mwc::geom {

DistanceMatrix::DistanceMatrix(std::span<const Point> points)
    : n_(points.size()), d_(points.size() * points.size(), 0.0) {
  for (std::size_t i = 0; i < n_; ++i) {
    d_[i * n_ + i] = 0.0;
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double dij = distance(points[i], points[j]);
      d_[i * n_ + j] = dij;
      d_[j * n_ + i] = dij;
    }
  }
}

bool DistanceMatrix::satisfies_triangle_inequality(double tol) const {
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j < n_; ++j)
      for (std::size_t k = 0; k < n_; ++k)
        if ((*this)(i, j) > (*this)(i, k) + (*this)(k, j) + tol) return false;
  return true;
}

double closed_tour_length(std::span<const Point> points,
                          std::span<const std::size_t> order) {
  if (order.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    MWC_DEBUG_ASSERT(order[i] < points.size());
    total += distance(points[order[i]], points[order[i + 1]]);
  }
  total += distance(points[order.back()], points[order.front()]);
  return total;
}

double path_length(std::span<const Point> points,
                   std::span<const std::size_t> order) {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    MWC_DEBUG_ASSERT(order[i] < points.size());
    total += distance(points[order[i]], points[order[i + 1]]);
  }
  return total;
}

}  // namespace mwc::geom
