#include "geom/distance.hpp"

#include <thread>

#include "geom/simd.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mwc::geom {

DistanceMatrix::DistanceMatrix(std::span<const Point> points)
    : n_(points.size()), d_(points.size() * points.size(), 0.0) {
  // Full-row SIMD fills instead of the seed's mirrored upper triangle:
  // each pair is evaluated twice, but with unit-stride vector kernels
  // that is still much faster, and symmetry is exact anyway
  // ((xi-xj)^2 == (xj-xi)^2 bit-for-bit).
  const PointsSoA soa(points);
  for (std::size_t i = 0; i < n_; ++i) {
    double* row = d_.data() + i * n_;
    simd::distance_row(soa.x(i), soa.y(i), soa.xs().data(), soa.ys().data(),
                       row, n_);
    row[i] = 0.0;
  }
}

bool DistanceMatrix::satisfies_triangle_inequality(double tol) const {
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j < n_; ++j)
      for (std::size_t k = 0; k < n_; ++k)
        if ((*this)(i, j) > (*this)(i, k) + (*this)(k, j) + tol) return false;
  return true;
}

LazyDistanceMatrix::LazyDistanceMatrix(std::vector<Point> points)
    : pts_(std::move(points)),
      soa_(std::span<const Point>(pts_)),
      // Deliberately uninitialized: zero-filling n^2 doubles costs more
      // than many consumers' whole probe set, and every row is written by
      // fill_row before its ready flag ever lets a reader in.
      d_(pts_.empty() ? nullptr : new double[pts_.size() * pts_.size()]),
      state_(pts_.empty() ? nullptr
                          : new std::atomic<std::uint8_t>[pts_.size()]) {
  for (std::size_t i = 0; i < pts_.size(); ++i)
    state_[i].store(0, std::memory_order_relaxed);
}

void LazyDistanceMatrix::fill_row(std::size_t i) const {
  const std::size_t n = pts_.size();
  double* row = d_.get() + i * n;
  simd::distance_row(soa_.x(i), soa_.y(i), soa_.xs().data(), soa_.ys().data(),
                     row, n);
  row[i] = 0.0;
  MWC_OBS_COUNT("oracle.rows_materialized");
  MWC_OBS_COUNT_N("oracle.row_fill_entries", n);
}

void LazyDistanceMatrix::ensure_row(std::size_t i) const {
  MWC_DEBUG_ASSERT(i < pts_.size());
  auto& flag = state_[i];
  if (flag.load(std::memory_order_acquire) == 2) return;
  std::uint8_t expected = 0;
  if (flag.compare_exchange_strong(expected, 1, std::memory_order_acq_rel)) {
    fill_row(i);
    flag.store(2, std::memory_order_release);
    return;
  }
  // Another thread is filling this row; wait until it publishes.
  while (flag.load(std::memory_order_acquire) != 2)
    std::this_thread::yield();
}

void LazyDistanceMatrix::materialize_all() const {
  for (std::size_t i = 0; i < pts_.size(); ++i) ensure_row(i);
}

void LazyDistanceMatrix::reset() {
  for (std::size_t i = 0; i < pts_.size(); ++i)
    state_[i].store(0, std::memory_order_relaxed);
}

std::size_t LazyDistanceMatrix::rows_materialized() const noexcept {
  std::size_t ready = 0;
  for (std::size_t i = 0; i < pts_.size(); ++i)
    if (state_[i].load(std::memory_order_acquire) == 2) ++ready;
  return ready;
}

double closed_tour_length(std::span<const Point> points,
                          std::span<const std::size_t> order) {
  if (order.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    MWC_DEBUG_ASSERT(order[i] < points.size());
    total += distance(points[order[i]], points[order[i + 1]]);
  }
  total += distance(points[order.back()], points[order.front()]);
  return total;
}

double path_length(std::span<const Point> points,
                   std::span<const std::size_t> order) {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    MWC_DEBUG_ASSERT(order[i] < points.size());
    total += distance(points[order[i]], points[order[i + 1]]);
  }
  return total;
}

}  // namespace mwc::geom
