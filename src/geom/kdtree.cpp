#include "geom/kdtree.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/assert.hpp"

namespace mwc::geom {

KdTree::KdTree(std::span<const Point> points)
    : points_(points.begin(), points.end()) {
  if (points_.empty()) return;
  nodes_.reserve(points_.size());
  std::vector<std::size_t> idx(points_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  root_ = build(idx, 0, idx.size(), 0);
}

std::size_t KdTree::build(std::vector<std::size_t>& idx, std::size_t lo,
                          std::size_t hi, int depth) {
  if (lo >= hi) return kNull;
  const int axis = depth % 2;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::nth_element(idx.begin() + lo, idx.begin() + mid, idx.begin() + hi,
                   [&](std::size_t a, std::size_t b) {
                     return axis == 0 ? points_[a].x < points_[b].x
                                      : points_[a].y < points_[b].y;
                   });
  const std::size_t node_id = nodes_.size();
  nodes_.push_back(Node{points_[idx[mid]], idx[mid], axis, kNull, kNull});
  // Children are built after push_back; re-index via node_id (vector may
  // reallocate during recursion, so never hold a reference across build()).
  const std::size_t left = build(idx, lo, mid, depth + 1);
  const std::size_t right = build(idx, mid + 1, hi, depth + 1);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void KdTree::nn_search(std::size_t node, const Point& query,
                       std::size_t& best, double& best_d2) const {
  if (node == kNull) return;
  const Node& nd = nodes_[node];
  const double d2 = distance2(nd.p, query);
  if (d2 < best_d2) {
    best_d2 = d2;
    best = nd.original_index;
  }
  const double delta =
      nd.axis == 0 ? query.x - nd.p.x : query.y - nd.p.y;
  const std::size_t near_child = delta < 0.0 ? nd.left : nd.right;
  const std::size_t far_child = delta < 0.0 ? nd.right : nd.left;
  nn_search(near_child, query, best, best_d2);
  if (squared_norm(delta, 0.0) < best_d2)
    nn_search(far_child, query, best, best_d2);
}

std::pair<std::size_t, double> KdTree::nearest_with_distance(
    const Point& query) const {
  if (empty()) return {0, std::numeric_limits<double>::infinity()};
  std::size_t best = points_.size();
  double best_d2 = std::numeric_limits<double>::infinity();
  nn_search(root_, query, best, best_d2);
  MWC_ASSERT(best < points_.size());
  return {best, std::sqrt(best_d2)};
}

std::size_t KdTree::nearest(const Point& query) const {
  return nearest_with_distance(query).first;
}

void KdTree::knn_search(
    std::size_t node, const Point& query, std::size_t k,
    std::vector<std::pair<double, std::size_t>>& heap) const {
  if (node == kNull) return;
  const Node& nd = nodes_[node];
  const std::pair<double, std::size_t> entry{distance2(nd.p, query),
                                             nd.original_index};
  if (heap.size() < k) {
    heap.push_back(entry);
    std::push_heap(heap.begin(), heap.end());
  } else if (entry < heap.front()) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = entry;
    std::push_heap(heap.begin(), heap.end());
  }
  const double delta =
      nd.axis == 0 ? query.x - nd.p.x : query.y - nd.p.y;
  const std::size_t near_child = delta < 0.0 ? nd.left : nd.right;
  const std::size_t far_child = delta < 0.0 ? nd.right : nd.left;
  knn_search(near_child, query, k, heap);
  // The far side can only contribute while the heap is short or the
  // splitting plane is no farther than the current k-th best. The bound
  // must be inclusive: a far-side point at *exactly* the k-th distance
  // with a smaller index wins the (d2, index) tie-break, and a strict
  // prune would discard it (GridIndex scans whole cells and never prunes
  // such ties — tests/geom/soa_test.cpp pins the two indexes identical).
  if (heap.size() < k || squared_norm(delta, 0.0) <= heap.front().first)
    knn_search(far_child, query, k, heap);
}

std::vector<std::pair<std::size_t, double>> KdTree::knearest(
    const Point& query, std::size_t k) const {
  std::vector<std::pair<std::size_t, double>> result;
  if (empty() || k == 0) return result;
  // Max-heap of (squared distance, index); ordering by the pair breaks
  // exact distance ties deterministically on the smaller index.
  std::vector<std::pair<double, std::size_t>> heap;
  heap.reserve(std::min(k, points_.size()));
  knn_search(root_, query, k, heap);
  std::sort(heap.begin(), heap.end());
  result.reserve(heap.size());
  for (const auto& [d2, idx] : heap)
    result.emplace_back(idx, std::sqrt(d2));
  return result;
}

void KdTree::range_search(std::size_t node, const Point& query, double r2,
                          std::vector<std::size_t>& out) const {
  if (node == kNull) return;
  const Node& nd = nodes_[node];
  if (distance2(nd.p, query) <= r2) out.push_back(nd.original_index);
  const double delta =
      nd.axis == 0 ? query.x - nd.p.x : query.y - nd.p.y;
  const std::size_t near_child = delta < 0.0 ? nd.left : nd.right;
  const std::size_t far_child = delta < 0.0 ? nd.right : nd.left;
  range_search(near_child, query, r2, out);
  if (squared_norm(delta, 0.0) <= r2) range_search(far_child, query, r2, out);
}

std::vector<std::size_t> KdTree::within(const Point& query,
                                        double radius) const {
  std::vector<std::size_t> out;
  if (empty() || radius < 0.0) return out;
  range_search(root_, query, radius * radius, out);
  return out;
}

}  // namespace mwc::geom
