// 2-D points and basic vector algebra for the planar WSN field.
#pragma once

#include <cmath>
#include <iosfwd>

namespace mwc::geom {

struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
  constexpr Point operator/(double s) const { return {x / s, y / s}; }

  constexpr bool operator==(const Point& o) const {
    return x == o.x && y == o.y;
  }
  constexpr bool operator!=(const Point& o) const { return !(*this == o); }

  /// Squared Euclidean norm.
  constexpr double norm2() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm2()); }
};

/// Euclidean distance.
double distance(const Point& a, const Point& b);

/// Squared Euclidean distance (avoids the sqrt in comparisons).
constexpr double distance2(const Point& a, const Point& b) {
  return (a - b).norm2();
}

/// Dot product of position vectors.
constexpr double dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y;
}

/// Z-component of the cross product (a x b); >0 when b is CCW of a.
constexpr double cross(const Point& a, const Point& b) {
  return a.x * b.y - a.y * b.x;
}

/// Midpoint of the segment ab.
constexpr Point midpoint(const Point& a, const Point& b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

/// Linear interpolation a + t (b - a).
constexpr Point lerp(const Point& a, const Point& b, double t) {
  return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

std::ostream& operator<<(std::ostream& os, const Point& p);

}  // namespace mwc::geom
