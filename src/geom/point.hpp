// 2-D points and basic vector algebra for the planar WSN field.
#pragma once

#include <cmath>
#include <iosfwd>

namespace mwc::geom {

struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
  constexpr Point operator/(double s) const { return {x / s, y / s}; }

  constexpr bool operator==(const Point& o) const {
    return x == o.x && y == o.y;
  }
  constexpr bool operator!=(const Point& o) const { return !(*this == o); }

  /// Squared Euclidean norm.
  constexpr double norm2() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm2()); }
};

/// The one definition of squared Euclidean arithmetic: dx*dx + dy*dy in
/// exactly this order. Every distance path — Point/BBox overloads, the
/// KdTree/GridIndex pruning tests, and the SIMD kernels in geom/simd.hpp
/// (per-lane) — routes through this helper, so the scalar fallback and
/// every vector backend compute bit-identical values.
constexpr double squared_norm(double dx, double dy) {
  return dx * dx + dy * dy;
}

/// Squared Euclidean distance on raw coordinates (the SoA form).
constexpr double distance2(double ax, double ay, double bx, double by) {
  return squared_norm(ax - bx, ay - by);
}

/// Euclidean distance. Defined as sqrt(distance2): one IEEE-correctly-
/// rounded sqrt over the squared norm, which is the form the SIMD kernels
/// evaluate per lane — scalar and vector paths are bit-identical. (The
/// seed used std::hypot here; the sqrt form trades hypot's overflow
/// robustness beyond ~1e154 — far outside any deployment field — for a
/// single vectorizable definition. See docs/ALGORITHMS.md §9.)
double distance(const Point& a, const Point& b);

/// Squared Euclidean distance (avoids the sqrt in comparisons).
constexpr double distance2(const Point& a, const Point& b) {
  return distance2(a.x, a.y, b.x, b.y);
}

/// Dot product of position vectors.
constexpr double dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y;
}

/// Z-component of the cross product (a x b); >0 when b is CCW of a.
constexpr double cross(const Point& a, const Point& b) {
  return a.x * b.y - a.y * b.x;
}

/// Midpoint of the segment ab.
constexpr Point midpoint(const Point& a, const Point& b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

/// Linear interpolation a + t (b - a).
constexpr Point lerp(const Point& a, const Point& b, double t) {
  return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

std::ostream& operator<<(std::ostream& os, const Point& p);

}  // namespace mwc::geom
