#include "geom/simd.hpp"

#include <atomic>
#include <cmath>

#include "geom/point.hpp"
#include "obs/obs.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define MWC_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define MWC_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace mwc::geom::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference loops. These are also the tails of every vector kernel,
// and the whole implementation when compiled out or runtime-disabled. Each
// lane/iteration is sqrt(squared_norm(dx, dy)) — the arithmetic of
// geom::distance — so paths agree bit-for-bit.
// ---------------------------------------------------------------------------

void row_scalar(double qx, double qy, const double* xs, const double* ys,
                double* out, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = std::sqrt(distance2(qx, qy, xs[j], ys[j]));
  }
}

void row2_scalar(double qx, double qy, const double* xs, const double* ys,
                 double* out, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = distance2(qx, qy, xs[j], ys[j]);
  }
}

void pairs_scalar(const double* ax, const double* ay, const double* bx,
                  const double* by, double* out, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = std::sqrt(distance2(ax[j], ay[j], bx[j], by[j]));
  }
}

#if MWC_SIMD_ENABLED && defined(MWC_SIMD_X86)

// ---------------------------------------------------------------------------
// x86 backends. Explicit mul/add intrinsics (never FMA: fused rounding would
// break bit-exactness with the scalar path), sqrt via the correctly-rounded
// vsqrtpd. This translation unit is compiled with -ffp-contract=off so the
// compiler cannot re-fuse them either.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f"))) void row_avx512(double qx, double qy,
                                                   const double* xs,
                                                   const double* ys,
                                                   double* out,
                                                   std::size_t n) {
  const __m512d vqx = _mm512_set1_pd(qx);
  const __m512d vqy = _mm512_set1_pd(qy);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d dx = _mm512_sub_pd(_mm512_loadu_pd(xs + j), vqx);
    const __m512d dy = _mm512_sub_pd(_mm512_loadu_pd(ys + j), vqy);
    const __m512d s = _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy));
    _mm512_storeu_pd(out + j, _mm512_sqrt_pd(s));
  }
  row_scalar(qx, qy, xs + j, ys + j, out + j, n - j);
}

__attribute__((target("avx512f"))) void row2_avx512(double qx, double qy,
                                                    const double* xs,
                                                    const double* ys,
                                                    double* out,
                                                    std::size_t n) {
  const __m512d vqx = _mm512_set1_pd(qx);
  const __m512d vqy = _mm512_set1_pd(qy);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d dx = _mm512_sub_pd(_mm512_loadu_pd(xs + j), vqx);
    const __m512d dy = _mm512_sub_pd(_mm512_loadu_pd(ys + j), vqy);
    _mm512_storeu_pd(out + j,
                     _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy)));
  }
  row2_scalar(qx, qy, xs + j, ys + j, out + j, n - j);
}

__attribute__((target("avx512f"))) void pairs_avx512(const double* ax,
                                                     const double* ay,
                                                     const double* bx,
                                                     const double* by,
                                                     double* out,
                                                     std::size_t n) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d dx =
        _mm512_sub_pd(_mm512_loadu_pd(ax + j), _mm512_loadu_pd(bx + j));
    const __m512d dy =
        _mm512_sub_pd(_mm512_loadu_pd(ay + j), _mm512_loadu_pd(by + j));
    const __m512d s = _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy));
    _mm512_storeu_pd(out + j, _mm512_sqrt_pd(s));
  }
  pairs_scalar(ax + j, ay + j, bx + j, by + j, out + j, n - j);
}

__attribute__((target("avx2"))) void row_avx2(double qx, double qy,
                                              const double* xs,
                                              const double* ys, double* out,
                                              std::size_t n) {
  const __m256d vqx = _mm256_set1_pd(qx);
  const __m256d vqy = _mm256_set1_pd(qy);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + j), vqx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + j), vqy);
    const __m256d s = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    _mm256_storeu_pd(out + j, _mm256_sqrt_pd(s));
  }
  row_scalar(qx, qy, xs + j, ys + j, out + j, n - j);
}

__attribute__((target("avx2"))) void row2_avx2(double qx, double qy,
                                               const double* xs,
                                               const double* ys, double* out,
                                               std::size_t n) {
  const __m256d vqx = _mm256_set1_pd(qx);
  const __m256d vqy = _mm256_set1_pd(qy);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + j), vqx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + j), vqy);
    _mm256_storeu_pd(out + j,
                     _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
  }
  row2_scalar(qx, qy, xs + j, ys + j, out + j, n - j);
}

__attribute__((target("avx2"))) void pairs_avx2(const double* ax,
                                                const double* ay,
                                                const double* bx,
                                                const double* by, double* out,
                                                std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dx =
        _mm256_sub_pd(_mm256_loadu_pd(ax + j), _mm256_loadu_pd(bx + j));
    const __m256d dy =
        _mm256_sub_pd(_mm256_loadu_pd(ay + j), _mm256_loadu_pd(by + j));
    const __m256d s = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    _mm256_storeu_pd(out + j, _mm256_sqrt_pd(s));
  }
  pairs_scalar(ax + j, ay + j, bx + j, by + j, out + j, n - j);
}

// SSE2 is baseline on x86-64: no target attribute needed.
void row_sse2(double qx, double qy, const double* xs, const double* ys,
              double* out, std::size_t n) {
  const __m128d vqx = _mm_set1_pd(qx);
  const __m128d vqy = _mm_set1_pd(qy);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + j), vqx);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + j), vqy);
    const __m128d s = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    _mm_storeu_pd(out + j, _mm_sqrt_pd(s));
  }
  row_scalar(qx, qy, xs + j, ys + j, out + j, n - j);
}

void row2_sse2(double qx, double qy, const double* xs, const double* ys,
               double* out, std::size_t n) {
  const __m128d vqx = _mm_set1_pd(qx);
  const __m128d vqy = _mm_set1_pd(qy);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + j), vqx);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + j), vqy);
    _mm_storeu_pd(out + j, _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
  }
  row2_scalar(qx, qy, xs + j, ys + j, out + j, n - j);
}

void pairs_sse2(const double* ax, const double* ay, const double* bx,
                const double* by, double* out, std::size_t n) {
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(ax + j), _mm_loadu_pd(bx + j));
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ay + j), _mm_loadu_pd(by + j));
    const __m128d s = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    _mm_storeu_pd(out + j, _mm_sqrt_pd(s));
  }
  pairs_scalar(ax + j, ay + j, bx + j, by + j, out + j, n - j);
}

#endif  // MWC_SIMD_ENABLED && MWC_SIMD_X86

#if MWC_SIMD_ENABLED && defined(MWC_SIMD_NEON)

void row_neon(double qx, double qy, const double* xs, const double* ys,
              double* out, std::size_t n) {
  const float64x2_t vqx = vdupq_n_f64(qx);
  const float64x2_t vqy = vdupq_n_f64(qy);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t dx = vsubq_f64(vld1q_f64(xs + j), vqx);
    const float64x2_t dy = vsubq_f64(vld1q_f64(ys + j), vqy);
    const float64x2_t s = vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy));
    vst1q_f64(out + j, vsqrtq_f64(s));
  }
  row_scalar(qx, qy, xs + j, ys + j, out + j, n - j);
}

void row2_neon(double qx, double qy, const double* xs, const double* ys,
               double* out, std::size_t n) {
  const float64x2_t vqx = vdupq_n_f64(qx);
  const float64x2_t vqy = vdupq_n_f64(qy);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t dx = vsubq_f64(vld1q_f64(xs + j), vqx);
    const float64x2_t dy = vsubq_f64(vld1q_f64(ys + j), vqy);
    vst1q_f64(out + j, vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)));
  }
  row2_scalar(qx, qy, xs + j, ys + j, out + j, n - j);
}

void pairs_neon(const double* ax, const double* ay, const double* bx,
                const double* by, double* out, std::size_t n) {
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t dx = vsubq_f64(vld1q_f64(ax + j), vld1q_f64(bx + j));
    const float64x2_t dy = vsubq_f64(vld1q_f64(ay + j), vld1q_f64(by + j));
    const float64x2_t s = vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy));
    vst1q_f64(out + j, vsqrtq_f64(s));
  }
  pairs_scalar(ax + j, ay + j, bx + j, by + j, out + j, n - j);
}

#endif  // MWC_SIMD_ENABLED && MWC_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch: probe the CPU once, pick the widest available backend.
// ---------------------------------------------------------------------------

using RowFn = void (*)(double, double, const double*, const double*, double*,
                       std::size_t);
using PairsFn = void (*)(const double*, const double*, const double*,
                         const double*, double*, std::size_t);

struct Backend {
  RowFn row = &row_scalar;
  RowFn row2 = &row2_scalar;
  PairsFn pairs = &pairs_scalar;
  unsigned lanes = 1;
  const char* name = "scalar";
};

Backend detect() {
  Backend b;
#if MWC_SIMD_ENABLED && defined(MWC_SIMD_X86)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) {
    b = {&row_avx512, &row2_avx512, &pairs_avx512, 8, "avx512"};
  } else if (__builtin_cpu_supports("avx2")) {
    b = {&row_avx2, &row2_avx2, &pairs_avx2, 4, "avx2"};
  } else {
    b = {&row_sse2, &row2_sse2, &pairs_sse2, 2, "sse2"};
  }
#elif MWC_SIMD_ENABLED && defined(MWC_SIMD_NEON)
  b = {&row_neon, &row2_neon, &pairs_neon, 2, "neon"};
#endif
  MWC_OBS_GAUGE_SET("geom.simd.lanes", b.lanes);
  return b;
}

const Backend& backend_info() {
  static const Backend b = detect();
  return b;
}

std::atomic<bool> g_runtime_enabled{true};

}  // namespace

bool compiled_in() noexcept { return MWC_SIMD_ENABLED != 0; }

bool enabled() noexcept {
  return compiled_in() && backend_info().lanes > 1 &&
         g_runtime_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  g_runtime_enabled.store(on, std::memory_order_relaxed);
}

unsigned lanes() noexcept { return enabled() ? backend_info().lanes : 1; }

const char* backend() noexcept {
  return enabled() ? backend_info().name : "scalar";
}

void distance_row(double qx, double qy, const double* xs, const double* ys,
                  double* out, std::size_t n) {
  if (enabled()) {
    backend_info().row(qx, qy, xs, ys, out, n);
    MWC_OBS_COUNT("geom.simd.rows_vectorized");
  } else {
    row_scalar(qx, qy, xs, ys, out, n);
    MWC_OBS_COUNT("geom.simd.scalar_fallbacks");
  }
}

void distance2_row(double qx, double qy, const double* xs, const double* ys,
                   double* out, std::size_t n) {
  if (enabled()) {
    backend_info().row2(qx, qy, xs, ys, out, n);
    MWC_OBS_COUNT("geom.simd.rows_vectorized");
  } else {
    row2_scalar(qx, qy, xs, ys, out, n);
    MWC_OBS_COUNT("geom.simd.scalar_fallbacks");
  }
}

void distance_pairs(const double* ax, const double* ay, const double* bx,
                    const double* by, double* out, std::size_t n) {
  if (enabled()) {
    backend_info().pairs(ax, ay, bx, by, out, n);
    MWC_OBS_COUNT("geom.simd.rows_vectorized");
  } else {
    pairs_scalar(ax, ay, bx, by, out, n);
    MWC_OBS_COUNT("geom.simd.scalar_fallbacks");
  }
}

}  // namespace mwc::geom::simd
