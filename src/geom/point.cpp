#include "geom/point.hpp"

#include <ostream>

namespace mwc::geom {

double distance(const Point& a, const Point& b) {
  return std::sqrt(distance2(a, b));
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

}  // namespace mwc::geom
