// Uniform-grid spatial index for nearest-neighbour queries over a static
// point set. Expected O(1) NN for uniformly deployed sensors; used by the
// greedy policy and by the variable-cycle heuristic's nearest-scheduling
// insertion. A kd-tree alternative lives in geom/kdtree.hpp; the two are
// cross-validated in tests and compared in bench/micro_spatial.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/point.hpp"

namespace mwc::geom {

class GridIndex {
 public:
  GridIndex() = default;

  /// Builds an index over `points` within `bounds`. `target_per_cell`
  /// controls the grid resolution (cells sized so that a uniform
  /// distribution averages roughly that many points per cell).
  GridIndex(std::span<const Point> points, const BBox& bounds,
            double target_per_cell = 2.0);

  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }

  /// Index of the nearest point to `query`; size() when the index is empty.
  std::size_t nearest(const Point& query) const;

  /// Nearest point and its distance. Returns {size(), +inf} when empty.
  std::pair<std::size_t, double> nearest_with_distance(
      const Point& query) const;

  /// The k points nearest to `query`, sorted by ascending distance (ties
  /// broken by ascending index). Returns fewer than k pairs when the
  /// index holds fewer points. Each pair is (point index, distance).
  std::vector<std::pair<std::size_t, double>> knearest(const Point& query,
                                                       std::size_t k) const;

  /// All point indices within `radius` of `query` (unsorted).
  std::vector<std::size_t> within(const Point& query, double radius) const;

 private:
  std::size_t cell_of(const Point& p) const;
  void scan_cell(std::size_t cx, std::size_t cy, const Point& query,
                 std::size_t& best, double& best_d2) const;

  std::vector<Point> points_;
  BBox bounds_;
  std::size_t nx_ = 0, ny_ = 0;
  double cell_w_ = 1.0, cell_h_ = 1.0;
  // CSR layout: cell_start_[c]..cell_start_[c+1] indexes into cell_items_.
  std::vector<std::size_t> cell_start_;
  std::vector<std::size_t> cell_items_;
};

}  // namespace mwc::geom
