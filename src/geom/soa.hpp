// Structure-of-arrays geometry: the same points as a span<Point>, but as
// two contiguous coordinate arrays, which is what the SIMD kernels in
// geom/simd.hpp consume (unit-stride loads instead of AoS gathers).
//
// A PointsSoA is built once per network/dispatch (O(n) deinterleave) and
// then shared by every kernel that batches over the set: oracle row
// fills, candidate-row refinement, the MSF root scan. Round-tripping
// through materialize() reproduces the original points bit-for-bit —
// pinned by tests/geom/soa_test.cpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.hpp"

namespace mwc::geom {

class PointsSoA {
 public:
  PointsSoA() = default;

  /// Deinterleaves `points` into the two coordinate arrays.
  explicit PointsSoA(std::span<const Point> points) { assign(points); }

  /// Deinterleaves the concatenation head ++ tail (the depots-then-sensors
  /// combined layout of tsp::QRootedInstance, without an AoS copy).
  PointsSoA(std::span<const Point> head, std::span<const Point> tail) {
    xs_.reserve(head.size() + tail.size());
    ys_.reserve(head.size() + tail.size());
    append(head);
    append(tail);
  }

  /// Replaces the contents with `points`.
  void assign(std::span<const Point> points) {
    xs_.clear();
    ys_.clear();
    xs_.reserve(points.size());
    ys_.reserve(points.size());
    append(points);
  }

  std::size_t size() const noexcept { return xs_.size(); }
  bool empty() const noexcept { return xs_.empty(); }

  double x(std::size_t i) const noexcept { return xs_[i]; }
  double y(std::size_t i) const noexcept { return ys_[i]; }
  Point point(std::size_t i) const noexcept { return {xs_[i], ys_[i]}; }

  std::span<const double> xs() const noexcept { return xs_; }
  std::span<const double> ys() const noexcept { return ys_; }

  /// Re-interleaves into an AoS vector; point(i) == result[i] bit-for-bit.
  std::vector<Point> materialize() const {
    std::vector<Point> pts;
    pts.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) pts.push_back(point(i));
    return pts;
  }

 private:
  void append(std::span<const Point> points) {
    for (const Point& p : points) {
      xs_.push_back(p.x);
      ys_.push_back(p.y);
    }
  }

  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace mwc::geom
