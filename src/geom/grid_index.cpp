#include "geom/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace mwc::geom {

GridIndex::GridIndex(std::span<const Point> points, const BBox& bounds,
                     double target_per_cell)
    : points_(points.begin(), points.end()), bounds_(bounds) {
  MWC_ASSERT(target_per_cell > 0.0);
  const std::size_t n = points_.size();
  if (n == 0) {
    nx_ = ny_ = 1;
    cell_start_.assign(2, 0);
    return;
  }
  // Ensure the bounds actually cover the points (callers may pass the
  // nominal field; clamp outliers in).
  for (const auto& p : points_) bounds_.expand(p);

  const double cells_target =
      std::max(1.0, static_cast<double>(n) / target_per_cell);
  const double aspect =
      bounds_.height() > 0.0 && bounds_.width() > 0.0
          ? bounds_.width() / bounds_.height()
          : 1.0;
  nx_ = static_cast<std::size_t>(
      std::max(1.0, std::round(std::sqrt(cells_target * aspect))));
  ny_ = static_cast<std::size_t>(
      std::max(1.0, std::round(cells_target / static_cast<double>(nx_))));
  cell_w_ = bounds_.width() > 0.0 ? bounds_.width() / double(nx_) : 1.0;
  cell_h_ = bounds_.height() > 0.0 ? bounds_.height() / double(ny_) : 1.0;

  // Counting sort of points into cells (CSR).
  const std::size_t num_cells = nx_ * ny_;
  std::vector<std::size_t> counts(num_cells, 0);
  std::vector<std::size_t> cell_id(n);
  for (std::size_t i = 0; i < n; ++i) {
    cell_id[i] = cell_of(points_[i]);
    ++counts[cell_id[i]];
  }
  cell_start_.assign(num_cells + 1, 0);
  for (std::size_t c = 0; c < num_cells; ++c)
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  cell_items_.resize(n);
  std::vector<std::size_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) cell_items_[cursor[cell_id[i]]++] = i;
}

std::size_t GridIndex::cell_of(const Point& p) const {
  const double fx = cell_w_ > 0.0 ? (p.x - bounds_.lo.x) / cell_w_ : 0.0;
  const double fy = cell_h_ > 0.0 ? (p.y - bounds_.lo.y) / cell_h_ : 0.0;
  const auto cx = std::min(nx_ - 1, static_cast<std::size_t>(std::max(0.0, fx)));
  const auto cy = std::min(ny_ - 1, static_cast<std::size_t>(std::max(0.0, fy)));
  return cy * nx_ + cx;
}

void GridIndex::scan_cell(std::size_t cx, std::size_t cy, const Point& query,
                          std::size_t& best, double& best_d2) const {
  const std::size_t c = cy * nx_ + cx;
  for (std::size_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
    const std::size_t i = cell_items_[k];
    const double d2 = distance2(points_[i], query);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
}

std::pair<std::size_t, double> GridIndex::nearest_with_distance(
    const Point& query) const {
  if (points_.empty())
    return {0, std::numeric_limits<double>::infinity()};

  // Expanding ring search around the query's cell. Stop once the closest
  // possible point in the next ring cannot beat the best found.
  const double fx = cell_w_ > 0.0 ? (query.x - bounds_.lo.x) / cell_w_ : 0.0;
  const double fy = cell_h_ > 0.0 ? (query.y - bounds_.lo.y) / cell_h_ : 0.0;
  const auto qx = static_cast<long long>(std::floor(fx));
  const auto qy = static_cast<long long>(std::floor(fy));

  std::size_t best = points_.size();
  double best_d2 = std::numeric_limits<double>::infinity();
  const long long max_ring =
      static_cast<long long>(std::max(nx_, ny_)) +
      std::max(std::abs(qx), std::abs(qy)) + 1;

  for (long long ring = 0; ring <= max_ring; ++ring) {
    if (best < points_.size()) {
      // Minimum distance from query to any cell in this ring.
      const double ring_gap =
          (static_cast<double>(ring) - 1.0) * std::min(cell_w_, cell_h_);
      if (ring_gap > 0.0 && squared_norm(ring_gap, 0.0) > best_d2) break;
    }
    bool visited_any = false;
    for (long long dy = -ring; dy <= ring; ++dy) {
      for (long long dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;  // ring only
        const long long cx = qx + dx;
        const long long cy = qy + dy;
        if (cx < 0 || cy < 0 || cx >= static_cast<long long>(nx_) ||
            cy >= static_cast<long long>(ny_))
          continue;
        visited_any = true;
        scan_cell(static_cast<std::size_t>(cx), static_cast<std::size_t>(cy),
                  query, best, best_d2);
      }
    }
    if (!visited_any && best < points_.size()) break;
  }
  MWC_ASSERT(best < points_.size());
  return {best, std::sqrt(best_d2)};
}

std::size_t GridIndex::nearest(const Point& query) const {
  return nearest_with_distance(query).first;
}

std::vector<std::pair<std::size_t, double>> GridIndex::knearest(
    const Point& query, std::size_t k) const {
  std::vector<std::pair<std::size_t, double>> result;
  if (points_.empty() || k == 0) return result;

  const double fx = cell_w_ > 0.0 ? (query.x - bounds_.lo.x) / cell_w_ : 0.0;
  const double fy = cell_h_ > 0.0 ? (query.y - bounds_.lo.y) / cell_h_ : 0.0;
  const auto qx = static_cast<long long>(std::floor(fx));
  const auto qy = static_cast<long long>(std::floor(fy));

  // Max-heap of (squared distance, index); ordering by the pair breaks
  // exact distance ties deterministically on the smaller index.
  std::vector<std::pair<double, std::size_t>> heap;
  heap.reserve(std::min(k, points_.size()));
  const auto offer = [&](std::size_t i, double d2) {
    const std::pair<double, std::size_t> entry{d2, i};
    if (heap.size() < k) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end());
    } else if (entry < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end());
    }
  };

  const long long max_ring =
      static_cast<long long>(std::max(nx_, ny_)) +
      std::max(std::abs(qx), std::abs(qy)) + 1;
  for (long long ring = 0; ring <= max_ring; ++ring) {
    if (heap.size() == k) {
      // Closest possible point in this ring cannot displace the k-th best.
      const double ring_gap =
          (static_cast<double>(ring) - 1.0) * std::min(cell_w_, cell_h_);
      if (ring_gap > 0.0 && squared_norm(ring_gap, 0.0) > heap.front().first)
        break;
    }
    bool visited_any = false;
    for (long long dy = -ring; dy <= ring; ++dy) {
      for (long long dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const long long cx = qx + dx;
        const long long cy = qy + dy;
        if (cx < 0 || cy < 0 || cx >= static_cast<long long>(nx_) ||
            cy >= static_cast<long long>(ny_))
          continue;
        visited_any = true;
        const std::size_t c = static_cast<std::size_t>(cy) * nx_ +
                              static_cast<std::size_t>(cx);
        for (std::size_t s = cell_start_[c]; s < cell_start_[c + 1]; ++s) {
          const std::size_t i = cell_items_[s];
          offer(i, distance2(points_[i], query));
        }
      }
    }
    if (!visited_any && heap.size() == k) break;
  }

  std::sort(heap.begin(), heap.end());
  result.reserve(heap.size());
  for (const auto& [d2, idx] : heap)
    result.emplace_back(idx, std::sqrt(d2));
  return result;
}

std::vector<std::size_t> GridIndex::within(const Point& query,
                                           double radius) const {
  std::vector<std::size_t> result;
  if (points_.empty() || radius < 0.0) return result;
  const double r2 = radius * radius;

  const long long x_lo = static_cast<long long>(
      std::floor((query.x - radius - bounds_.lo.x) / cell_w_));
  const long long x_hi = static_cast<long long>(
      std::floor((query.x + radius - bounds_.lo.x) / cell_w_));
  const long long y_lo = static_cast<long long>(
      std::floor((query.y - radius - bounds_.lo.y) / cell_h_));
  const long long y_hi = static_cast<long long>(
      std::floor((query.y + radius - bounds_.lo.y) / cell_h_));

  for (long long cy = std::max(0LL, y_lo);
       cy <= std::min<long long>(ny_ - 1, y_hi); ++cy) {
    for (long long cx = std::max(0LL, x_lo);
         cx <= std::min<long long>(nx_ - 1, x_hi); ++cx) {
      const std::size_t c =
          static_cast<std::size_t>(cy) * nx_ + static_cast<std::size_t>(cx);
      for (std::size_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const std::size_t i = cell_items_[k];
        if (distance2(points_[i], query) <= r2) result.push_back(i);
      }
    }
  }
  return result;
}

}  // namespace mwc::geom
