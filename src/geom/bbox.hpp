// Axis-aligned bounding boxes; used by deployment (the field) and by the
// spatial indices for pruning.
#pragma once

#include "geom/point.hpp"

namespace mwc::geom {

struct BBox {
  Point lo{0.0, 0.0};
  Point hi{0.0, 0.0};

  constexpr BBox() = default;
  constexpr BBox(Point low, Point high) : lo(low), hi(high) {}

  /// The square field [0, side] x [0, side].
  static constexpr BBox square(double side) {
    return BBox{{0.0, 0.0}, {side, side}};
  }

  constexpr double width() const { return hi.x - lo.x; }
  constexpr double height() const { return hi.y - lo.y; }
  constexpr double area() const { return width() * height(); }
  constexpr Point center() const { return midpoint(lo, hi); }

  constexpr bool contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  constexpr bool intersects(const BBox& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y &&
           o.lo.y <= hi.y;
  }

  /// Grows the box (in place) to contain p; a default box adopts p.
  void expand(const Point& p);

  /// Squared distance from p to the box (0 when inside).
  double distance2_to(const Point& p) const;

  /// Smallest box containing the given points; default box when empty.
  template <typename It>
  static BBox of(It first, It last) {
    BBox b;
    if (first == last) return b;
    b.lo = b.hi = *first;
    for (auto it = std::next(first); it != last; ++it) b.expand(*it);
    return b;
  }
};

}  // namespace mwc::geom
