// Dense pairwise distance matrices over point sets. The q-rooted algorithms
// run Prim's MST on complete metric graphs, so an O(n^2) row-major matrix is
// the natural representation: contiguous, cache-friendly, and symmetric.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.hpp"

namespace mwc::geom {

/// Symmetric n x n matrix of Euclidean distances, stored row-major.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  /// Builds the full matrix from `points` (O(n^2) space and time).
  explicit DistanceMatrix(std::span<const Point> points);

  std::size_t size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  double operator()(std::size_t i, std::size_t j) const noexcept {
    return d_[i * n_ + j];
  }

  /// Row i as a contiguous span (used by Prim's inner loop).
  std::span<const double> row(std::size_t i) const noexcept {
    return {d_.data() + i * n_, n_};
  }

  /// Verifies the triangle inequality on all O(n^3) triples; test helper
  /// for small instances only.
  bool satisfies_triangle_inequality(double tol = 1e-9) const;

 private:
  std::size_t n_ = 0;
  std::vector<double> d_;
};

/// Total length of the closed polyline visiting `order` of `points`
/// (returns to the first node).
double closed_tour_length(std::span<const Point> points,
                          std::span<const std::size_t> order);

/// Total length of the open polyline.
double path_length(std::span<const Point> points,
                   std::span<const std::size_t> order);

}  // namespace mwc::geom
