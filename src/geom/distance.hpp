// Dense pairwise distance matrices over point sets. The q-rooted algorithms
// run Prim's MST on complete metric graphs, so an O(n^2) row-major matrix is
// the natural representation: contiguous, cache-friendly, and symmetric.
//
// `DistanceMatrix` is the eager form; `LazyDistanceMatrix` materializes one
// row at a time on first touch (thread-safe), which is what the
// tsp::DistanceOracle builds on: a network-wide cache only ever pays for
// the rows its dispatch subsets actually probe.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geom/point.hpp"
#include "geom/soa.hpp"

namespace mwc::geom {

/// Symmetric n x n matrix of Euclidean distances, stored row-major.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  /// Builds the full matrix from `points` (O(n^2) space and time).
  explicit DistanceMatrix(std::span<const Point> points);

  std::size_t size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  double operator()(std::size_t i, std::size_t j) const noexcept {
    return d_[i * n_ + j];
  }

  /// Row i as a contiguous span (used by Prim's inner loop).
  std::span<const double> row(std::size_t i) const noexcept {
    return {d_.data() + i * n_, n_};
  }

  /// Verifies the triangle inequality on all O(n^3) triples; test helper
  /// for small instances only.
  bool satisfies_triangle_inequality(double tol = 1e-9) const;

 private:
  std::size_t n_ = 0;
  std::vector<double> d_;
};

/// Symmetric n x n Euclidean distance matrix whose rows are computed on
/// first access. Concurrent readers are safe: each row is guarded by an
/// atomic tri-state flag (empty / filling / ready), so parallel consumers
/// (e.g. batched tour costing on a thread pool) share one materialization.
/// Values are bit-identical to calling `distance` directly.
class LazyDistanceMatrix {
 public:
  LazyDistanceMatrix() = default;
  explicit LazyDistanceMatrix(std::vector<Point> points);

  LazyDistanceMatrix(LazyDistanceMatrix&&) noexcept = default;
  LazyDistanceMatrix& operator=(LazyDistanceMatrix&&) noexcept = default;
  LazyDistanceMatrix(const LazyDistanceMatrix&) = delete;
  LazyDistanceMatrix& operator=(const LazyDistanceMatrix&) = delete;

  std::size_t size() const noexcept { return pts_.size(); }
  bool empty() const noexcept { return pts_.empty(); }
  std::span<const Point> points() const noexcept { return pts_; }

  /// The same points deinterleaved, for callers that batch their own
  /// probes through geom/simd.hpp instead of materializing rows here.
  const PointsSoA& soa() const noexcept { return soa_; }

  double operator()(std::size_t i, std::size_t j) const {
    ensure_row(i);
    return d_[i * pts_.size() + j];
  }

  /// Row i as a contiguous span, materializing it if needed.
  std::span<const double> row(std::size_t i) const {
    ensure_row(i);
    return {d_.get() + i * pts_.size(), pts_.size()};
  }

  /// Eagerly fills every remaining row (e.g. before a measurement where
  /// first-touch cost should not be attributed to the consumer).
  void materialize_all() const;

  /// Drops every cached row (storage is kept, so the next fills reuse
  /// already-faulted pages). Bench helper; not safe against concurrent
  /// readers.
  void reset();

  /// Rows currently materialized (cache-occupancy statistic).
  std::size_t rows_materialized() const noexcept;

 private:
  void ensure_row(std::size_t i) const;
  void fill_row(std::size_t i) const;

  std::vector<Point> pts_;
  PointsSoA soa_;
  /// Row-major n x n storage, allocated uninitialized (see the ctor);
  /// row i is valid only once state_[i] reads 2.
  mutable std::unique_ptr<double[]> d_;
  /// Per-row state: 0 = empty, 1 = being filled, 2 = ready.
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> state_;
};

/// Total length of the closed polyline visiting `order` of `points`
/// (returns to the first node).
double closed_tour_length(std::span<const Point> points,
                          std::span<const std::size_t> order);

/// Total length of the open polyline.
double path_length(std::span<const Point> points,
                   std::span<const std::size_t> order);

}  // namespace mwc::geom
