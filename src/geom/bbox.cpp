#include "geom/bbox.hpp"

#include <algorithm>

namespace mwc::geom {

void BBox::expand(const Point& p) {
  lo.x = std::min(lo.x, p.x);
  lo.y = std::min(lo.y, p.y);
  hi.x = std::max(hi.x, p.x);
  hi.y = std::max(hi.y, p.y);
}

double BBox::distance2_to(const Point& p) const {
  const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
  const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
  return squared_norm(dx, dy);
}

}  // namespace mwc::geom
