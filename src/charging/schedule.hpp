// Charging schedulings and the policy interface the simulator drives.
//
// A charging scheduling (C_j, t_j) in the paper dispatches all q chargers
// at time t_j on tours jointly covering a sensor set. In this library a
// policy emits `Dispatch` records (time + sensor set); the simulator turns
// each set into q closed tours with Algorithm 2 (tsp::q_rooted_tsp), so
// every policy's travelled distance is measured by exactly the same tour
// constructor and the comparison isolates *scheduling* quality.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "wsn/network.hpp"

namespace mwc::charging {

/// One charging scheduling: at `time`, the q chargers jointly visit
/// `sensors` (sensor ids; kept sorted for deterministic tours & hashing).
struct Dispatch {
  double time = 0.0;
  std::vector<std::size_t> sensors;
};

/// Read-only view of the live simulation state offered to policies. The
/// base station's knowledge: current cycles (updated at slot boundaries)
/// and residual lifetimes.
class StateView {
 public:
  virtual ~StateView() = default;

  virtual const wsn::Network& network() const = 0;
  /// Monitoring period T.
  virtual double horizon() const = 0;
  /// Current simulation time.
  virtual double now() const = 0;
  /// Time until sensor i dies at its current consumption rate.
  virtual double residual_life(std::size_t i) const = 0;
  /// Current maximum charging cycle τ_i(t) of sensor i.
  virtual double cycle(std::size_t i) const = 0;
};

/// Scheduling policy. The simulator calls, in order: reset() once at t=0,
/// then repeatedly next_dispatch() / on_dispatch_executed(); at every slot
/// boundary of a variable-cycle run it calls on_cycles_updated() after
/// refreshing the state.
class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  virtual void reset(const StateView& view) = 0;

  /// Earliest planned dispatch at time >= view.now(), or nullopt when the
  /// policy plans nothing more before the horizon.
  virtual std::optional<Dispatch> next_dispatch(const StateView& view) = 0;

  /// The simulator executed `dispatch` (all listed sensors recharged).
  virtual void on_dispatch_executed(const StateView& view,
                                    const Dispatch& dispatch) = 0;

  /// Cycle values changed (variable-τ runs; called after the state
  /// reflects the new cycles).
  virtual void on_cycles_updated(const StateView& view) { (void)view; }

  /// Dispatch sets the policy already knows it will emit (e.g. the K+1
  /// round classes of MinTotalDistance). The simulator may cost them
  /// ahead of time, in parallel, to pre-warm its tour-cost cache
  /// (Simulator::precost_policy). Purely an optimization hint: the
  /// default (no known sets) is always correct. Called after reset().
  virtual std::vector<std::vector<std::size_t>> planned_dispatch_sets(
      const StateView& view) const {
    (void)view;
    return {};
  }
};

/// Sorts and deduplicates a dispatch's sensor set (normal form).
void normalize(Dispatch& dispatch);

}  // namespace mwc::charging
