// Algorithm 3 of the paper: MinTotalDistance, the 2(K+2)-approximation for
// the service cost minimization problem with fixed maximum charging cycles.
//
// Construction: round cycles geometrically (charging/rounding.hpp), then
// dispatch at every multiple of τ_1 — round j charges the union of all
// classes V_k whose cycle 2^k τ_1 divides j τ_1. The paper builds rounds
// 1..2^K and repeats them with period τ'_n = 2^K τ_1 for T = 2m τ'_n; the
// equivalent closed form used here (valid for arbitrary T, no divisibility
// assumption) dispatches at j τ_1 for every j >= 1 with j τ_1 < T. A V_k
// sensor is then charged exactly every 2^k τ_1 = τ'_i <= τ_i, and its last
// charge is within τ'_i of T, so the schedule is feasible (Lemma 2).
#pragma once

#include <deque>

#include "charging/rounding.hpp"
#include "charging/schedule.hpp"
#include "tsp/qrooted.hpp"

namespace mwc::charging {

/// Online-policy form, consumed by the simulator.
class MinTotalDistancePolicy final : public Policy {
 public:
  MinTotalDistancePolicy() = default;

  std::string name() const override { return "MinTotalDistance"; }

  void reset(const StateView& view) override;
  std::optional<Dispatch> next_dispatch(const StateView& view) override;
  void on_dispatch_executed(const StateView& view,
                            const Dispatch& dispatch) override;

  /// The K+1 distinct round classes (round j's set depends only on its
  /// depth, and round 2^k has depth k), so the simulator can pre-cost
  /// every set this policy will ever dispatch.
  std::vector<std::vector<std::size_t>> planned_dispatch_sets(
      const StateView& view) const override;

  const CyclePartition& partition() const noexcept { return partition_; }

 private:
  CyclePartition partition_;
  std::size_t next_round_ = 1;
};

/// Offline form: the complete schedule for period T plus its tours and
/// exact service cost. Used by tests (feasibility, approximation-ratio
/// experiments) and by examples that want the tours themselves.
struct BuiltSchedule {
  CyclePartition partition;
  std::vector<Dispatch> dispatches;  ///< all dispatches in (0, T), in order
  /// Tours of the j-th *distinct* round class: entry k holds the tours of
  /// a round whose depth is k (rounds repeat; only K+1 distinct sets
  /// exist). tours_by_depth[k] covers classes V_0..V_k.
  std::vector<tsp::QRootedTours> tours_by_depth;
  double total_cost = 0.0;           ///< service cost over the whole period
};

BuiltSchedule build_min_total_distance_schedule(
    const wsn::Network& network, const std::vector<double>& cycles, double T,
    const tsp::QRootedOptions& tour_options = {});

}  // namespace mwc::charging
