// Exact solver for the service cost minimization problem on small
// instances, restricted to integer dispatch times.
//
// With integer maximum charging cycles and dispatches on the unit time
// grid, the problem is a shortest path over per-sensor "ages" (time since
// last charge): state = (a_1..a_n) with a_i <= τ_i, transitions choose
// the subset charged at the next tick and pay that subset's *optimal*
// q-rooted tour cost (brute force). Grid restriction only raises the
// optimum, so `alg_cost <= 2(K+2) * grid_OPT` is implied by Theorem 2 —
// and measuring `alg_cost / grid_OPT` gives a (pessimistic) empirical
// approximation ratio. Exponential: intended for n <= 6, τ <= 6, T <= 24.
#pragma once

#include <vector>

#include "charging/schedule.hpp"
#include "wsn/network.hpp"

namespace mwc::charging {

struct ExactScheduleResult {
  double cost = 0.0;
  std::vector<Dispatch> dispatches;  ///< at integer times in [1, T-1]
};

/// Optimal grid schedule. `cycles` must be positive integers (as doubles)
/// and `horizon` a positive integer. Asserts the instance is small enough
/// (state space <= ~2e6 and n <= 10).
ExactScheduleResult solve_exact_schedule(const wsn::Network& network,
                                         const std::vector<double>& cycles,
                                         double horizon);

}  // namespace mwc::charging
