#include "charging/min_total_distance.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mwc::charging {

void MinTotalDistancePolicy::reset(const StateView& view) {
  std::vector<double> cycles;
  cycles.reserve(view.network().n());
  for (std::size_t i = 0; i < view.network().n(); ++i)
    cycles.push_back(view.cycle(i));
  partition_ = partition_by_cycles(cycles);
  next_round_ = 1;
}

std::optional<Dispatch> MinTotalDistancePolicy::next_dispatch(
    const StateView& view) {
  if (partition_.groups.empty()) return std::nullopt;
  const double time = static_cast<double>(next_round_) * partition_.tau1;
  if (time >= view.horizon()) return std::nullopt;
  Dispatch dispatch;
  dispatch.time = time;
  dispatch.sensors = round_sensor_set(partition_, next_round_);
  return dispatch;
}

void MinTotalDistancePolicy::on_dispatch_executed(const StateView& view,
                                                  const Dispatch& dispatch) {
  (void)view;
  (void)dispatch;
  ++next_round_;
}

std::vector<std::vector<std::size_t>>
MinTotalDistancePolicy::planned_dispatch_sets(const StateView& view) const {
  (void)view;
  if (partition_.groups.empty()) return {};
  std::vector<std::vector<std::size_t>> sets;
  sets.reserve(partition_.K + 1);
  // Round 2^k is the canonical depth-k round; its set covers V_0..V_k.
  for (std::size_t k = 0; k <= partition_.K; ++k)
    sets.push_back(round_sensor_set(partition_, std::size_t{1} << k));
  return sets;
}

BuiltSchedule build_min_total_distance_schedule(
    const wsn::Network& network, const std::vector<double>& cycles, double T,
    const tsp::QRootedOptions& tour_options) {
  MWC_ASSERT(cycles.size() == network.n());
  MWC_ASSERT(T > 0.0);

  BuiltSchedule schedule;
  schedule.partition = partition_by_cycles(cycles);
  if (cycles.empty()) return schedule;
  const auto& partition = schedule.partition;

  // Tours for the K+1 distinct round classes.
  std::vector<double> class_cost(partition.K + 1, 0.0);
  schedule.tours_by_depth.reserve(partition.K + 1);
  std::vector<std::size_t> cumulative;  // V_0 ∪ ... ∪ V_k
  for (std::size_t k = 0; k <= partition.K; ++k) {
    cumulative.insert(cumulative.end(), partition.groups[k].begin(),
                      partition.groups[k].end());
    tsp::QRootedInstance instance;
    instance.depots = network.depots();
    instance.sensors.reserve(cumulative.size());
    for (std::size_t id : cumulative)
      instance.sensors.push_back(network.sensor(id).position);
    auto tours = tsp::q_rooted_tsp(instance, tour_options);
    class_cost[k] = tours.total_length;
    schedule.tours_by_depth.push_back(std::move(tours));
  }

  // Dispatch stream: round j at time j τ_1, for j τ_1 < T.
  for (std::size_t j = 1;
       static_cast<double>(j) * partition.tau1 < T; ++j) {
    Dispatch dispatch;
    dispatch.time = static_cast<double>(j) * partition.tau1;
    dispatch.sensors = round_sensor_set(partition, j);
    schedule.total_cost += class_cost[round_depth(partition, j)];
    schedule.dispatches.push_back(std::move(dispatch));
  }
  return schedule;
}

}  // namespace mwc::charging
