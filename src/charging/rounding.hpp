// Geometric charging-cycle rounding (Sec. V-A of the paper).
//
// Sensors are partitioned into K+1 classes V_0..V_K by their maximum
// charging cycle: v_i ∈ V_k iff 2^k τ_1 <= τ_i < 2^(k+1) τ_1, where τ_1 is
// the smallest cycle and K = floor(log2(τ_max / τ_1)). Every sensor in V_k
// is assigned the rounded cycle τ'_i = 2^k τ_1; Eq. (1) guarantees
// τ_i / 2 < τ'_i <= τ_i, which costs at most a factor 2 in charge
// frequency but makes all assigned cycles divide each other — the property
// the power-of-two round structure of Algorithm 3 exploits.
#pragma once

#include <cstddef>
#include <vector>

namespace mwc::charging {

struct CyclePartition {
  double tau1 = 0.0;                ///< smallest maximum charging cycle
  std::size_t K = 0;                ///< floor(log2(tau_max / tau1))
  std::vector<std::size_t> level;   ///< per sensor: its class k
  std::vector<double> assigned;     ///< per sensor: τ'_i = 2^k τ_1
  std::vector<std::vector<std::size_t>> groups;  ///< V_0..V_K (sensor ids)

  /// 2^k τ_1, the common cycle of class k.
  double class_cycle(std::size_t k) const;
};

/// Builds the partition from per-sensor maximum cycles (all > 0).
CyclePartition partition_by_cycles(const std::vector<double>& cycles);

/// Sensor set of the paper's j-th scheduling C_j (1-based): the union of
/// all V_k with j mod 2^k == 0, k = 0..K. Sorted ascending.
std::vector<std::size_t> round_sensor_set(const CyclePartition& partition,
                                          std::size_t j);

/// Largest k in [0, K] with j mod 2^k == 0, i.e. the highest class charged
/// in round j (the round's "depth": min(trailing zeros of j, K)).
std::size_t round_depth(const CyclePartition& partition, std::size_t j);

}  // namespace mwc::charging
