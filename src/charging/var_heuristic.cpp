#include "charging/var_heuristic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tsp/qrooted.hpp"
#include "util/assert.hpp"

namespace mwc::charging {

MinTotalDistanceVarPolicy::MinTotalDistanceVarPolicy(
    const VarHeuristicOptions& options)
    : options_(options) {}

void MinTotalDistanceVarPolicy::reset(const StateView& view) {
  const std::size_t n = view.network().n();
  reported_cycle_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) reported_cycle_[i] = view.cycle(i);
  assigned_.assign(n, 0.0);
  recompute_count_ = 0;
  plan_.clear();
  recompute_plan(view);
  // reset() counts as the initial plan, not a re-computation.
  recompute_count_ = 0;
}

std::optional<Dispatch> MinTotalDistanceVarPolicy::next_dispatch(
    const StateView& view) {
  // Drop stale entries (can appear if a recompute raced past old times).
  while (!plan_.empty() && plan_.front().time < view.now() - 1e-9)
    plan_.pop_front();
  if (plan_.empty()) return std::nullopt;
  if (plan_.front().time >= view.horizon()) return std::nullopt;
  return plan_.front();
}

void MinTotalDistanceVarPolicy::on_dispatch_executed(
    const StateView& /*view*/, const Dispatch& dispatch) {
  MWC_ASSERT(!plan_.empty());
  MWC_ASSERT(std::abs(plan_.front().time - dispatch.time) < 1e-9);
  plan_.pop_front();
}

bool MinTotalDistanceVarPolicy::plan_still_applicable(
    const StateView& /*view*/) const {
  for (std::size_t i = 0; i < assigned_.size(); ++i) {
    const double reported = reported_cycle_[i];
    const double assigned = assigned_[i];
    if (assigned <= 0.0) return false;
    // Paper's rule: keep the plan iff τ̂'(t-1) <= τ̂(t) < 2 τ̂'(t-1).
    // Below the assigned cycle the plan is infeasible; at 2x or above it
    // is overly conservative (wasted service cost), so rebuild too.
    if (reported < assigned * (1.0 - 1e-12)) return false;
    if (reported >= 2.0 * assigned) return false;
  }
  return true;
}

void MinTotalDistanceVarPolicy::on_cycles_updated(const StateView& view) {
  // Sensors report only when their cycle moved enough (variation
  // threshold); the base station acts on the reported values.
  bool any_report = false;
  for (std::size_t i = 0; i < reported_cycle_.size(); ++i) {
    const double current = view.cycle(i);
    const double baseline = reported_cycle_[i];
    const double rel_change =
        baseline > 0.0 ? std::abs(current - baseline) / baseline
                       : std::numeric_limits<double>::infinity();
    if (rel_change > options_.report_threshold ||
        (options_.report_threshold == 0.0 && current != baseline)) {
      reported_cycle_[i] = current;
      any_report = true;
    }
  }
  if (!any_report) return;
  if (plan_still_applicable(view)) return;
  recompute_plan(view);
}

void MinTotalDistanceVarPolicy::recompute_plan(const StateView& view) {
  ++recompute_count_;
  plan_.clear();

  const auto& network = view.network();
  const std::size_t n = network.n();
  if (n == 0) return;
  const double t = view.now();
  const double T = view.horizon();

  // Step 1: Algorithm 3 on the reported cycles, shifted to start at t.
  const CyclePartition partition = partition_by_cycles(reported_cycle_);
  assigned_ = partition.assigned;
  const double tau1 = partition.tau1;

  std::vector<Dispatch> dispatches;
  for (std::size_t j = 1;; ++j) {
    const double time = t + static_cast<double>(j) * tau1;
    if (time >= T) break;
    Dispatch d;
    d.time = time;
    d.sensors = round_sensor_set(partition, j);
    dispatches.push_back(std::move(d));
  }

  // Step 2: rescue set V^a — sensors whose residual life cannot reach
  // their first planned charge (at t + τ̂'_i).
  std::vector<std::size_t> rescue;
  for (std::size_t i = 0; i < n; ++i) {
    if (view.residual_life(i) < assigned_[i]) rescue.push_back(i);
  }

  // (C'_0, t): sensors that cannot even survive one τ̂_1.
  Dispatch c0;
  c0.time = t;
  std::vector<std::vector<std::size_t>> rescue_by_level(partition.K + 1);
  for (std::size_t i : rescue) {
    const double life = view.residual_life(i);
    if (life < tau1) {
      c0.sensors.push_back(i);
      continue;
    }
    // 2^k τ̂_1 <= life < 2^(k+1) τ̂_1, capped at K.
    std::size_t k = 0;
    while (k < partition.K && partition.class_cycle(k + 1) <= life) ++k;
    rescue_by_level[k].push_back(i);
  }

  // Step 3: fold each V^a_k into the earliest 2^k + 1 schedulings via one
  // q-rooted MSF on the auxiliary graph G^(k). Scheduling node sets grow
  // as earlier iterations insert sensors, matching the paper's
  // V(C^(k+1)_j) recurrence.
  const auto& points = network.sensor_points();
  const auto& depots = network.depots();

  // scheduling_sets[0] is C'_0; scheduling_sets[j] aliases dispatches[j-1].
  auto scheduling_sensors = [&](std::size_t j) -> std::vector<std::size_t>& {
    return j == 0 ? c0.sensors : dispatches[j - 1].sensors;
  };
  const std::size_t num_schedulings = dispatches.size() + 1;

  for (std::size_t k = 0; k <= partition.K; ++k) {
    const auto& level = rescue_by_level[k];
    if (level.empty()) continue;
    const std::size_t num_roots =
        std::min(num_schedulings, (std::size_t{1} << k) + 1);
    if (num_roots == 0) break;

    std::vector<geom::Point> level_points;
    level_points.reserve(level.size());
    for (std::size_t i : level) level_points.push_back(points[i]);

    // Roots are presented latest-scheduling-first: every scheduling
    // contains the depot set R, so a rescue sensor far from all scheduled
    // sensors is equidistant to every root — the tie must go to the
    // *latest* admissible scheduling (charging it any earlier than its
    // residual life requires only adds service cost).
    const auto scheduling_of_root = [num_roots](std::size_t root) {
      return num_roots - 1 - root;
    };
    const auto root_dist = [&](std::size_t root,
                               std::size_t local) -> double {
      const geom::Point& p = level_points[local];
      double best = std::numeric_limits<double>::infinity();
      for (const auto& depot : depots)
        best = std::min(best, geom::distance(p, depot));
      for (std::size_t sid : scheduling_sensors(scheduling_of_root(root)))
        best = std::min(best, geom::distance(p, points[sid]));
      return best;
    };

    const auto assignment =
        tsp::q_rooted_msf_assign(num_roots, root_dist, level_points);
    for (std::size_t root = 0; root < num_roots; ++root) {
      auto& target = scheduling_sensors(scheduling_of_root(root));
      for (std::size_t local : assignment.groups[root])
        target.push_back(level[local]);
    }
  }

  // Assemble the final plan: C'_0 first (only if it charges someone),
  // then the modified round stream.
  if (!c0.sensors.empty()) {
    normalize(c0);
    plan_.push_back(std::move(c0));
  }
  for (auto& d : dispatches) {
    normalize(d);
    plan_.push_back(std::move(d));
  }
}

}  // namespace mwc::charging
