// The greedy baseline of Sec. VII-A: every sensor sends a charging request
// when its estimated residual lifetime drops below the threshold Δl
// (default Δl = τ_min); the base station then dispatches the chargers to
// all sensors currently below the threshold.
//
// Realization: request handling is batched on a check grid of spacing
// `check_interval` (default = Δl, mirroring the discrete-time simulation
// the paper evaluates): a sensor whose residual life crosses Δl between
// checks is charged at the next check boundary — everyone crossing within
// the same window shares one set of tours. A sensor already below the
// threshold (possible right after a cycle redraw) is handled
// event-driven: it is charged immediately, subject to a half-cycle
// anti-retrigger clamp so sensors with τ_i <= Δl cannot request in an
// infinite loop. The grid spacing never exceeds Δl, so no crossing sensor
// can expire while waiting for its boundary.
#pragma once

#include "charging/schedule.hpp"
#include "wsn/predictor.hpp"

namespace mwc::charging {

struct GreedyOptions {
  /// Residual-lifetime threshold Δl; <= 0 means "use the smallest cycle
  /// observed at reset" (the paper's Δl = τ_min).
  double threshold = 0.0;
  /// Request-batching grid spacing; <= 0 means "equal to the threshold".
  /// Values larger than the threshold are clamped down to it (a coarser
  /// grid could let a crossing sensor die before its boundary).
  double check_interval = 0.0;
  /// EWMA weight γ for *predicted* residual lifetimes (Sec. VI-A): with
  /// γ in (0, 1) the policy estimates each sensor's lifetime from the
  /// paper's ρ̂(t+1) = γρ(t) + (1-γ)ρ̂(t) predictor instead of reading
  /// the exact value — the knowledge model the paper's greedy runs under.
  /// Prediction lag can cause late charges (deaths are then reported by
  /// the simulator, not hidden). 0 = perfect slot-level knowledge.
  double prediction_gamma = 0.0;
};

class GreedyPolicy final : public Policy {
 public:
  explicit GreedyPolicy(const GreedyOptions& options = {});

  std::string name() const override { return "Greedy"; }

  void reset(const StateView& view) override;
  std::optional<Dispatch> next_dispatch(const StateView& view) override;
  void on_dispatch_executed(const StateView& view,
                            const Dispatch& dispatch) override;
  void on_cycles_updated(const StateView& view) override;

  double threshold() const noexcept { return effective_threshold_; }
  double check_interval() const noexcept { return effective_interval_; }

 private:
  /// Time (>= now) at which sensor i is charged next: its crossing's
  /// check boundary, or an immediate rescue slot when already below Δl.
  double request_time(const StateView& view, std::size_t i) const;

  /// The residual lifetime the base station believes sensor i has —
  /// exact, or EWMA-estimated when prediction_gamma > 0.
  double estimated_residual(const StateView& view, std::size_t i) const;

  GreedyOptions options_;
  double effective_threshold_ = 0.0;
  double effective_interval_ = 0.0;
  /// Earliest time each sensor may trigger again (anti-retrigger clamp).
  std::vector<double> not_before_;
  /// Per-sensor EWMA rate predictors (prediction_gamma > 0 only).
  std::vector<wsn::EwmaPredictor> predictors_;
};

}  // namespace mwc::charging
