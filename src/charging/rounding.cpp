#include "charging/rounding.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mwc::charging {

double CyclePartition::class_cycle(std::size_t k) const {
  return std::ldexp(tau1, static_cast<int>(k));  // tau1 * 2^k
}

CyclePartition partition_by_cycles(const std::vector<double>& cycles) {
  CyclePartition partition;
  if (cycles.empty()) return partition;

  double tau_min = cycles[0];
  double tau_max = cycles[0];
  for (double tau : cycles) {
    MWC_ASSERT_MSG(tau > 0.0, "charging cycles must be positive");
    tau_min = std::min(tau_min, tau);
    tau_max = std::max(tau_max, tau);
  }
  partition.tau1 = tau_min;

  // K = floor(log2(tau_max / tau1)) with floating-point guard rails.
  auto level_of = [&](double tau) -> std::size_t {
    const double ratio = tau / tau_min;
    auto k = static_cast<long long>(std::floor(std::log2(ratio)));
    if (k < 0) k = 0;
    // Correct boundary rounding: ensure 2^k <= ratio < 2^(k+1).
    while (std::ldexp(1.0, static_cast<int>(k + 1)) <= ratio) ++k;
    while (k > 0 && std::ldexp(1.0, static_cast<int>(k)) > ratio) --k;
    return static_cast<std::size_t>(k);
  };

  partition.K = level_of(tau_max);
  partition.groups.assign(partition.K + 1, {});
  partition.level.resize(cycles.size());
  partition.assigned.resize(cycles.size());
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    const std::size_t k = level_of(cycles[i]);
    partition.level[i] = k;
    partition.assigned[i] = partition.class_cycle(k);
    partition.groups[k].push_back(i);
    // Eq. (1): τ_i / 2 < τ'_i <= τ_i (tolerate tiny FP slack).
    MWC_DEBUG_ASSERT(partition.assigned[i] <= cycles[i] * (1.0 + 1e-12));
    MWC_DEBUG_ASSERT(partition.assigned[i] > cycles[i] / 2.0 * (1.0 - 1e-12));
  }
  return partition;
}

std::size_t round_depth(const CyclePartition& partition, std::size_t j) {
  MWC_ASSERT(j >= 1);
  std::size_t k = 0;
  while (k < partition.K && (j % (std::size_t{1} << (k + 1))) == 0) ++k;
  return k;
}

std::vector<std::size_t> round_sensor_set(const CyclePartition& partition,
                                          std::size_t j) {
  std::vector<std::size_t> set;
  if (partition.groups.empty()) return set;
  const std::size_t depth = round_depth(partition, j);
  for (std::size_t k = 0; k <= depth; ++k) {
    set.insert(set.end(), partition.groups[k].begin(),
               partition.groups[k].end());
  }
  std::sort(set.begin(), set.end());
  return set;
}

}  // namespace mwc::charging
