// Reference baselines that are NOT from the paper (clearly labelled as
// library extras). They bracket the design space:
//
//  * PeriodicAll — the "naive strategy" Sec. III-C dismisses: charge every
//    sensor every τ_min. Trivially feasible and maximally expensive;
//    an upper anchor for the experiment plots.
//  * PerSensorPeriodic — charge each sensor at exactly its own cycle τ_i
//    with no coordination (each deadline its own dispatch). Shows what the
//    geometric rounding + round alignment of Algorithm 3 buys.
#pragma once

#include "charging/schedule.hpp"

namespace mwc::charging {

class PeriodicAllPolicy final : public Policy {
 public:
  std::string name() const override { return "PeriodicAll"; }

  void reset(const StateView& view) override;
  std::optional<Dispatch> next_dispatch(const StateView& view) override;
  void on_dispatch_executed(const StateView& view,
                            const Dispatch& dispatch) override;
  void on_cycles_updated(const StateView& view) override;

 private:
  double period_ = 0.0;
  double next_time_ = 0.0;  ///< time of the next planned full charge
};

class PerSensorPeriodicPolicy final : public Policy {
 public:
  std::string name() const override { return "PerSensorPeriodic"; }

  void reset(const StateView& view) override;
  std::optional<Dispatch> next_dispatch(const StateView& view) override;
  void on_dispatch_executed(const StateView& view,
                            const Dispatch& dispatch) override;
  void on_cycles_updated(const StateView& view) override;

 private:
  /// Safety margin: charge at fraction `margin_` of the cycle.
  static constexpr double margin_ = 0.9;
  std::vector<double> due_;  ///< next charge deadline per sensor
};

}  // namespace mwc::charging
