#include "charging/schedule.hpp"

#include <algorithm>

namespace mwc::charging {

void normalize(Dispatch& dispatch) {
  std::sort(dispatch.sensors.begin(), dispatch.sensors.end());
  dispatch.sensors.erase(
      std::unique(dispatch.sensors.begin(), dispatch.sensors.end()),
      dispatch.sensors.end());
}

}  // namespace mwc::charging
