#include "charging/exact_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tsp/exact.hpp"
#include "util/assert.hpp"

namespace mwc::charging {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ExactScheduleResult solve_exact_schedule(const wsn::Network& network,
                                         const std::vector<double>& cycles,
                                         double horizon) {
  const std::size_t n = network.n();
  MWC_ASSERT(cycles.size() == n);
  MWC_ASSERT_MSG(n >= 1 && n <= 10, "exact solver: n too large");
  MWC_ASSERT_MSG(horizon > 0.0 && horizon == std::floor(horizon),
                 "exact solver: horizon must be a positive integer");
  const auto T = static_cast<std::size_t>(horizon);

  std::vector<std::size_t> tau(n);
  std::size_t num_states = 1;
  for (std::size_t i = 0; i < n; ++i) {
    MWC_ASSERT_MSG(cycles[i] >= 1.0 && cycles[i] == std::floor(cycles[i]),
                   "exact solver: cycles must be positive integers");
    tau[i] = static_cast<std::size_t>(cycles[i]);
    num_states *= tau[i] + 1;  // ages 0..tau_i
    MWC_ASSERT_MSG(num_states <= 2'000'000,
                   "exact solver: state space too large");
  }

  // Optimal cost of every chargeable subset (brute-force q-rooted TSP).
  const std::size_t num_subsets = std::size_t{1} << n;
  std::vector<double> subset_cost(num_subsets, 0.0);
  for (std::size_t mask = 1; mask < num_subsets; ++mask) {
    tsp::QRootedInstance instance;
    instance.depots = network.depots();
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i))
        instance.sensors.push_back(network.sensor(i).position);
    }
    subset_cost[mask] = tsp::brute_force_q_rooted_tsp(instance);
  }

  // Mixed-radix state <-> age decoding.
  std::vector<std::size_t> stride(n);
  {
    std::size_t acc = 1;
    for (std::size_t i = 0; i < n; ++i) {
      stride[i] = acc;
      acc *= tau[i] + 1;
    }
  }
  const auto age_of = [&](std::size_t state, std::size_t i) {
    return (state / stride[i]) % (tau[i] + 1);
  };

  // dp[state] at time t; parent pointers for reconstruction.
  std::vector<double> dp(num_states, kInf), next(num_states, kInf);
  // from[t][state] = (previous state, mask charged at time t).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> from(
      T, std::vector<std::pair<std::size_t, std::size_t>>(
             num_states, {num_states, 0}));

  dp[0] = 0.0;  // all ages zero at t = 0

  // Dispatches may happen at t = 1..T-1 (the paper schedules none at T).
  for (std::size_t t = 1; t + 1 <= T; ++t) {
    std::fill(next.begin(), next.end(), kInf);
    for (std::size_t state = 0; state < num_states; ++state) {
      if (dp[state] == kInf) continue;
      // Everyone ages by one tick; a charged sensor closes a gap of
      // (age + 1) <= tau (guaranteed by the aging check), an uncharged
      // one must still be within its cycle.
      for (std::size_t mask = 0; mask < num_subsets; ++mask) {
        std::size_t new_state = 0;
        bool feasible = true;
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t aged = age_of(state, i) + 1;
          if (aged > tau[i]) {
            feasible = false;
            break;
          }
          const bool charged = (mask >> i) & 1;
          new_state += (charged ? 0 : aged) * stride[i];
        }
        if (!feasible) continue;
        const double cand = dp[state] + subset_cost[mask];
        if (cand < next[new_state]) {
          next[new_state] = cand;
          from[t][new_state] = {state, mask};
        }
      }
    }
    dp.swap(next);
  }

  // Terminal filter: ages are at time T-1; the final gap to T is age + 1.
  ExactScheduleResult result;
  result.cost = kInf;
  std::size_t best_state = num_states;
  for (std::size_t state = 0; state < num_states; ++state) {
    if (dp[state] == kInf) continue;
    bool terminal_ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (age_of(state, i) + 1 > tau[i]) {
        terminal_ok = false;
        break;
      }
    }
    if (terminal_ok && dp[state] < result.cost) {
      result.cost = dp[state];
      best_state = state;
    }
  }
  MWC_ASSERT_MSG(std::isfinite(result.cost),
                 "exact solver: no feasible schedule (T too long?)");

  // Reconstruct dispatches by walking parents from T-1 back to 1.
  std::size_t state = best_state;
  for (std::size_t t = T - 1; t >= 1; --t) {
    const auto [prev, mask] = from[t][state];
    MWC_ASSERT(prev != num_states);
    if (mask != 0) {
      Dispatch d;
      d.time = static_cast<double>(t);
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) d.sensors.push_back(i);
      }
      result.dispatches.push_back(std::move(d));
    }
    state = prev;
    if (t == 1) break;
  }
  std::reverse(result.dispatches.begin(), result.dispatches.end());
  return result;
}

}  // namespace mwc::charging
