#include "charging/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace mwc::charging {

namespace {
constexpr double kTimeTolerance = 1e-9;
}

GreedyPolicy::GreedyPolicy(const GreedyOptions& options) : options_(options) {}

void GreedyPolicy::reset(const StateView& view) {
  if (options_.threshold > 0.0) {
    effective_threshold_ = options_.threshold;
  } else {
    double tau_min = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < view.network().n(); ++i)
      tau_min = std::min(tau_min, view.cycle(i));
    effective_threshold_ = tau_min;
  }
  effective_interval_ = options_.check_interval > 0.0
                            ? std::min(options_.check_interval,
                                       effective_threshold_)
                            : effective_threshold_;
  not_before_.assign(view.network().n(), 0.0);

  predictors_.clear();
  if (options_.prediction_gamma > 0.0) {
    predictors_.reserve(view.network().n());
    for (std::size_t i = 0; i < view.network().n(); ++i) {
      predictors_.emplace_back(options_.prediction_gamma,
                               1.0 / view.cycle(i));
    }
  }
}

double GreedyPolicy::estimated_residual(const StateView& view,
                                        std::size_t i) const {
  const double exact = view.residual_life(i);
  if (predictors_.empty()) return exact;
  // The base station knows the energy *fraction* (from the last charge
  // and reported consumption) but projects the lifetime with the
  // predicted rate: l̂ = re / ρ̂ = exact · (τ̂ / τ_true).
  const double tau_true = view.cycle(i);
  const double tau_hat = predictors_[i].predicted_cycle(1.0);
  if (tau_true <= 0.0 || !std::isfinite(tau_hat)) return exact;
  return exact * (tau_hat / tau_true);
}

double GreedyPolicy::request_time(const StateView& view,
                                  std::size_t i) const {
  const double now = view.now();
  const double residual = estimated_residual(view, i);
  // Moment the sensor is (or was) due: its residual life hits Δl.
  const double due = now + std::max(residual - effective_threshold_, 0.0);
  const double target = std::max({due, now, not_before_[i]});
  // Serve it at the next check boundary at/after the target, unless the
  // sensor cannot survive that long (possible right after a cycle
  // redraw) — then rescue off-grid at the target itself.
  const double boundary =
      std::ceil((target - kTimeTolerance) / effective_interval_) *
      effective_interval_;
  if (boundary <= now + residual + kTimeTolerance) return boundary;
  return target;
}

std::optional<Dispatch> GreedyPolicy::next_dispatch(const StateView& view) {
  const std::size_t n = view.network().n();
  if (n == 0) return std::nullopt;

  double earliest = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i)
    earliest = std::min(earliest, request_time(view, i));
  if (earliest >= view.horizon()) return std::nullopt;

  Dispatch dispatch;
  dispatch.time = earliest;
  for (std::size_t i = 0; i < n; ++i) {
    if (request_time(view, i) <= earliest + kTimeTolerance)
      dispatch.sensors.push_back(i);
  }
  MWC_ASSERT(!dispatch.sensors.empty());
  return dispatch;
}

void GreedyPolicy::on_dispatch_executed(const StateView& view,
                                        const Dispatch& dispatch) {
  // Clamp each charged sensor's next trigger: a sensor with τ_i <= Δl
  // would otherwise re-request at the same instant forever. The clamp
  // never exceeds half the (possibly shrunken) cycle, so it cannot
  // outlive the sensor.
  for (std::size_t i : dispatch.sensors) {
    const double tau = view.cycle(i);
    const double period = tau > 2.0 * effective_threshold_
                              ? tau - effective_threshold_
                              : tau / 2.0;
    not_before_[i] = dispatch.time + period;
  }
}

void GreedyPolicy::on_cycles_updated(const StateView& view) {
  // Sensors report their monitored rates; feed the predictors first so
  // the estimates below already include this slot's observation.
  if (!predictors_.empty()) {
    for (std::size_t i = 0; i < predictors_.size(); ++i)
      predictors_[i].observe(1.0 / view.cycle(i));
  }
  // Request times are recomputed from the view on demand, but the
  // anti-retrigger clamp must never outlive a sensor (as far as the base
  // station can tell): if a redraw shrank a sensor's residual life, relax
  // its clamp so the threshold crossing (or an immediate rescue) stays
  // reachable.
  for (std::size_t i = 0; i < not_before_.size(); ++i) {
    const double safe_latest =
        view.now() +
        std::max(estimated_residual(view, i) - effective_threshold_, 0.0);
    not_before_[i] = std::min(not_before_[i], safe_latest);
  }
}

}  // namespace mwc::charging
