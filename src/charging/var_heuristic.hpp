// MinTotalDistance-var (Sec. VI of the paper): the heuristic for variable
// maximum charging cycles.
//
// The base station keeps the current power-of-two plan. When sensors
// report new cycles τ̂_i(t), the plan survives if every sensor satisfies
// τ̂'_i(t-1) <= τ̂_i(t) < 2 τ̂'_i(t-1) (its assigned cycle is still legal
// and not overly conservative). Otherwise the plan is rebuilt:
//
//  1. Run Algorithm 3 from the current time t with the updated cycles —
//     this assumes full batteries, which sensors no longer have.
//  2. Rescue set V^a = sensors whose residual lifetime is below their new
//     assigned cycle (they would die before their first planned charge).
//     Sensors with residual life < τ̂_1 form V^a_t, charged immediately in
//     a new scheduling (C'_0, t).
//  3. Remaining rescue sensors are partitioned by residual lifetime into
//     V^a_0..V^a_K (v ∈ V^a_k iff 2^k τ̂_1 <= l̂ < 2^(k+1) τ̂_1) and
//     folded into the earliest 2^k + 1 schedulings. Each V^a_k is
//     distributed by one q-rooted-MSF run on the auxiliary graph G^(k)
//     whose roots are the *schedulings* C'_0..C'_{2^k} (root-to-sensor
//     distance = nearest node of that scheduling, depots included) — each
//     resulting tree's sensors join its root scheduling.
#pragma once

#include <deque>

#include "charging/rounding.hpp"
#include "charging/schedule.hpp"

namespace mwc::charging {

struct VarHeuristicOptions {
  /// Relative cycle-change threshold below which a sensor does not even
  /// report (the paper's per-sensor variation threshold); 0 reports all.
  double report_threshold = 0.0;
};

class MinTotalDistanceVarPolicy final : public Policy {
 public:
  explicit MinTotalDistanceVarPolicy(const VarHeuristicOptions& options = {});

  std::string name() const override { return "MinTotalDistance-var"; }

  void reset(const StateView& view) override;
  std::optional<Dispatch> next_dispatch(const StateView& view) override;
  void on_dispatch_executed(const StateView& view,
                            const Dispatch& dispatch) override;
  void on_cycles_updated(const StateView& view) override;

  /// Number of full plan recomputations performed so far (observability;
  /// the ΔT experiment correlates cost with recompute frequency).
  std::size_t recompute_count() const noexcept { return recompute_count_; }

 private:
  void recompute_plan(const StateView& view);
  /// True if the existing plan remains feasible and near-optimal under
  /// the newly reported cycles (the paper's τ̂' <= τ̂ < 2 τ̂' test).
  bool plan_still_applicable(const StateView& view) const;

  VarHeuristicOptions options_;
  std::deque<Dispatch> plan_;
  /// Assigned (rounded) cycle per sensor under the current plan.
  std::vector<double> assigned_;
  /// Cycle each sensor last *reported* to the base station.
  std::vector<double> reported_cycle_;
  std::size_t recompute_count_ = 0;
};

}  // namespace mwc::charging
