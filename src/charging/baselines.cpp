#include "charging/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/assert.hpp"

namespace mwc::charging {

namespace {
constexpr double kTimeTolerance = 1e-9;
}

void PeriodicAllPolicy::reset(const StateView& view) {
  period_ = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < view.network().n(); ++i)
    period_ = std::min(period_, view.cycle(i));
  next_time_ = period_;
}

std::optional<Dispatch> PeriodicAllPolicy::next_dispatch(
    const StateView& view) {
  const std::size_t n = view.network().n();
  if (n == 0 || !std::isfinite(period_)) return std::nullopt;
  if (next_time_ >= view.horizon()) return std::nullopt;
  Dispatch dispatch;
  dispatch.time = std::max(next_time_, view.now());
  dispatch.sensors.resize(n);
  std::iota(dispatch.sensors.begin(), dispatch.sensors.end(),
            std::size_t{0});
  return dispatch;
}

void PeriodicAllPolicy::on_dispatch_executed(const StateView& view,
                                             const Dispatch& dispatch) {
  (void)view;
  next_time_ = dispatch.time + period_;
}

void PeriodicAllPolicy::on_cycles_updated(const StateView& view) {
  // Track the global minimum period, and never plan past the earliest
  // depletion: a redraw can leave a sensor with less residual life than
  // the current period.
  period_ = std::numeric_limits<double>::infinity();
  double min_residual = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < view.network().n(); ++i) {
    period_ = std::min(period_, view.cycle(i));
    min_residual = std::min(min_residual, view.residual_life(i));
  }
  next_time_ = std::min(next_time_, view.now() + 0.9 * min_residual);
}

std::optional<Dispatch> PerSensorPeriodicPolicy::next_dispatch(
    const StateView& view) {
  const std::size_t n = view.network().n();
  if (n == 0) return std::nullopt;
  double earliest = std::numeric_limits<double>::infinity();
  for (double d : due_) earliest = std::min(earliest, d);
  earliest = std::max(earliest, view.now());
  if (earliest >= view.horizon()) return std::nullopt;

  Dispatch dispatch;
  dispatch.time = earliest;
  for (std::size_t i = 0; i < n; ++i) {
    if (due_[i] <= earliest + kTimeTolerance) dispatch.sensors.push_back(i);
  }
  MWC_ASSERT(!dispatch.sensors.empty());
  return dispatch;
}

void PerSensorPeriodicPolicy::reset(const StateView& view) {
  due_.resize(view.network().n());
  for (std::size_t i = 0; i < due_.size(); ++i)
    due_[i] = margin_ * view.cycle(i);
}

void PerSensorPeriodicPolicy::on_dispatch_executed(const StateView& view,
                                                   const Dispatch& dispatch) {
  for (std::size_t i : dispatch.sensors)
    due_[i] = dispatch.time + margin_ * view.cycle(i);
}

void PerSensorPeriodicPolicy::on_cycles_updated(const StateView& view) {
  // Clamp deadlines so no sensor outlives its (possibly shrunken) residual
  // life.
  for (std::size_t i = 0; i < due_.size(); ++i) {
    due_[i] = std::min(due_[i],
                       view.now() + margin_ * view.residual_life(i));
  }
}

}  // namespace mwc::charging
