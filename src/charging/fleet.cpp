#include "charging/fleet.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mwc::charging {

namespace {

tsp::QRootedInstance make_instance(
    const wsn::Network& network,
    const std::vector<std::size_t>& sensor_ids) {
  tsp::QRootedInstance instance;
  instance.depots = network.depots();
  instance.sensors.reserve(sensor_ids.size());
  for (std::size_t id : sensor_ids)
    instance.sensors.push_back(network.sensor(id).position);
  return instance;
}

void accumulate(FleetPlan& plan, const tsp::DistanceView& distances,
                tsp::SplitResult&& split, std::size_t depot) {
  for (auto& tour : split.tours) {
    Trip trip;
    trip.length = tour.length_with(distances);
    trip.sensors = tour.size() > 0 ? tour.size() - 1 : 0;
    trip.tour = std::move(tour);
    if (trip.sensors > 0) ++plan.num_trips;
    plan.total_length += trip.length;
    plan.max_trip_length = std::max(plan.max_trip_length, trip.length);
    plan.trips[depot].push_back(std::move(trip));
  }
}

}  // namespace

FleetPlan plan_capacitated_round(const wsn::Network& network,
                                 const std::vector<std::size_t>& sensor_ids,
                                 double capacity,
                                 const tsp::DistanceOracle* oracle) {
  MWC_ASSERT(capacity > 0.0);
  tsp::QRootedInstance instance;  // keeps the direct path's points alive
  tsp::DistanceView distances;
  if (oracle != nullptr) {
    distances = oracle->dispatch_view(sensor_ids);
  } else {
    instance = make_instance(network, sensor_ids);
    distances = instance.distances();
  }
  const auto tours = tsp::q_rooted_tsp(distances, network.q());

  FleetPlan plan;
  plan.vehicles_per_depot = 1;
  plan.trips.resize(network.q());
  for (std::size_t l = 0; l < tours.tours.size(); ++l) {
    accumulate(
        plan, distances,
        tsp::split_tour_capacity(distances, tours.tours[l], l, capacity), l);
  }
  return plan;
}

FleetPlan plan_minmax_round(const wsn::Network& network,
                            const std::vector<std::size_t>& sensor_ids,
                            std::size_t chargers_per_depot,
                            const tsp::DistanceOracle* oracle) {
  MWC_ASSERT(chargers_per_depot >= 1);
  tsp::QRootedInstance instance;  // keeps the direct path's points alive
  tsp::DistanceView distances;
  if (oracle != nullptr) {
    distances = oracle->dispatch_view(sensor_ids);
  } else {
    instance = make_instance(network, sensor_ids);
    distances = instance.distances();
  }
  const auto tours = tsp::q_rooted_tsp(distances, network.q());

  FleetPlan plan;
  plan.vehicles_per_depot = chargers_per_depot;
  plan.trips.resize(network.q());
  for (std::size_t l = 0; l < tours.tours.size(); ++l) {
    accumulate(plan, distances,
               tsp::split_tour_minmax(distances, tours.tours[l], l,
                                      chargers_per_depot),
               l);
  }
  return plan;
}

double round_duration_seconds(const FleetPlan& plan,
                              const DurationModel& model) {
  MWC_ASSERT(model.travel_speed > 0.0);
  MWC_ASSERT(model.charge_seconds >= 0.0);
  double makespan = 0.0;
  for (const auto& depot_trips : plan.trips) {
    double depot_time = 0.0;
    for (const auto& trip : depot_trips) {
      const double seconds =
          trip.length / model.travel_speed +
          static_cast<double>(trip.sensors) * model.charge_seconds;
      if (plan.vehicles_per_depot == 1) {
        depot_time += seconds;  // one vehicle, back-to-back trips
      } else {
        depot_time = std::max(depot_time, seconds);  // trip per vehicle
      }
    }
    makespan = std::max(makespan, depot_time);
  }
  return makespan;
}

}  // namespace mwc::charging
