#include "charging/fleet.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mwc::charging {

namespace {

tsp::QRootedInstance make_instance(
    const wsn::Network& network,
    const std::vector<std::size_t>& sensor_ids) {
  tsp::QRootedInstance instance;
  instance.depots = network.depots();
  instance.sensors.reserve(sensor_ids.size());
  for (std::size_t id : sensor_ids)
    instance.sensors.push_back(network.sensor(id).position);
  return instance;
}

void accumulate(FleetPlan& plan, const std::vector<geom::Point>& points,
                tsp::SplitResult&& split, std::size_t depot) {
  for (auto& tour : split.tours) {
    Trip trip;
    trip.length = tour.length(points);
    trip.sensors = tour.size() > 0 ? tour.size() - 1 : 0;
    trip.tour = std::move(tour);
    if (trip.sensors > 0) ++plan.num_trips;
    plan.total_length += trip.length;
    plan.max_trip_length = std::max(plan.max_trip_length, trip.length);
    plan.trips[depot].push_back(std::move(trip));
  }
}

}  // namespace

FleetPlan plan_capacitated_round(const wsn::Network& network,
                                 const std::vector<std::size_t>& sensor_ids,
                                 double capacity) {
  MWC_ASSERT(capacity > 0.0);
  const auto instance = make_instance(network, sensor_ids);
  const auto tours = tsp::q_rooted_tsp(instance);
  const auto points = instance.combined_points();

  FleetPlan plan;
  plan.vehicles_per_depot = 1;
  plan.trips.resize(network.q());
  for (std::size_t l = 0; l < tours.tours.size(); ++l) {
    accumulate(plan, points,
               tsp::split_tour_capacity(points, tours.tours[l], l, capacity),
               l);
  }
  return plan;
}

FleetPlan plan_minmax_round(const wsn::Network& network,
                            const std::vector<std::size_t>& sensor_ids,
                            std::size_t chargers_per_depot) {
  MWC_ASSERT(chargers_per_depot >= 1);
  const auto instance = make_instance(network, sensor_ids);
  const auto tours = tsp::q_rooted_tsp(instance);
  const auto points = instance.combined_points();

  FleetPlan plan;
  plan.vehicles_per_depot = chargers_per_depot;
  plan.trips.resize(network.q());
  for (std::size_t l = 0; l < tours.tours.size(); ++l) {
    accumulate(plan, points,
               tsp::split_tour_minmax(points, tours.tours[l], l,
                                      chargers_per_depot),
               l);
  }
  return plan;
}

double round_duration_seconds(const FleetPlan& plan,
                              const DurationModel& model) {
  MWC_ASSERT(model.travel_speed > 0.0);
  MWC_ASSERT(model.charge_seconds >= 0.0);
  double makespan = 0.0;
  for (const auto& depot_trips : plan.trips) {
    double depot_time = 0.0;
    for (const auto& trip : depot_trips) {
      const double seconds =
          trip.length / model.travel_speed +
          static_cast<double>(trip.sensors) * model.charge_seconds;
      if (plan.vehicles_per_depot == 1) {
        depot_time += seconds;  // one vehicle, back-to-back trips
      } else {
        depot_time = std::max(depot_time, seconds);  // trip per vehicle
      }
    }
    makespan = std::max(makespan, depot_time);
  }
  return makespan;
}

}  // namespace mwc::charging
