// Fleet-level extensions on top of the q-rooted TSP (library extras, from
// the paper's related-work axis):
//
//  * capacity-limited chargers (Liang et al. [7]): each vehicle can travel
//    at most `capacity` per trip; a depot's workload is served by several
//    trips flown back-to-back whose tours each fit the budget.
//  * min-max fleets (Xu et al. [16]): each depot hosts `chargers_per_depot`
//    vehicles and the goal is the earliest completion of a charging round,
//    i.e. minimize the longest single tour.
//  * dispatch duration model: the paper *assumes* the time a charging
//    round takes is negligible versus sensor lifetimes; `round_duration`
//    computes the actual makespan of a round given travel speed and
//    per-sensor charging time, so the assumption can be validated (see
//    bench/abl_charging_time).
#pragma once

#include <cstddef>
#include <vector>

#include "tsp/qrooted.hpp"
#include "tsp/split.hpp"
#include "wsn/network.hpp"

namespace mwc::charging {

struct Trip {
  /// Closed tour in the combined indexing of the instance that produced
  /// it (0..q-1 depots, then sensors in sensor_ids order).
  tsp::Tour tour;
  double length = 0.0;
  std::size_t sensors = 0;  ///< sensors visited (tour size minus depot)
};

struct FleetPlan {
  std::vector<std::vector<Trip>> trips;  ///< per depot
  double total_length = 0.0;
  double max_trip_length = 0.0;
  std::size_t num_trips = 0;  ///< trips that actually visit sensors
  /// 1 for capacitated plans (one vehicle flies its depot's trips back to
  /// back); k for min-max plans (each trip has its own vehicle).
  std::size_t vehicles_per_depot = 1;
};

/// Plans one charging round over `sensor_ids` with per-trip length budget
/// `capacity`: Algorithm 2 tours, each split by split_tour_capacity.
/// Requires capacity to cover every sensor's round trip from its serving
/// depot (asserted). When `oracle` (a whole-network tsp::DistanceOracle
/// with the network's depots and all sensors) is given, distances come
/// from its cache instead of fresh geometry — bit-identical results.
FleetPlan plan_capacitated_round(const wsn::Network& network,
                                 const std::vector<std::size_t>& sensor_ids,
                                 double capacity,
                                 const tsp::DistanceOracle* oracle = nullptr);

/// Plans one charging round with `chargers_per_depot` vehicles at every
/// depot, minimizing the longest tour: Algorithm 2 tours, each split by
/// split_tour_minmax. chargers_per_depot == 1 reproduces the plain
/// q-rooted round. `oracle` as in plan_capacitated_round.
FleetPlan plan_minmax_round(const wsn::Network& network,
                            const std::vector<std::size_t>& sensor_ids,
                            std::size_t chargers_per_depot,
                            const tsp::DistanceOracle* oracle = nullptr);

struct DurationModel {
  double travel_speed = 5.0;     ///< metres per second (a slow UGV)
  double charge_seconds = 60.0;  ///< time to fully charge one sensor
};

/// Wall-clock duration of one charging round under `model`. Depots work
/// in parallel; within a depot, a single vehicle flies its trips
/// back-to-back (vehicles_per_depot == 1) while a min-max fleet flies
/// them concurrently (one trip per vehicle).
double round_duration_seconds(const FleetPlan& plan,
                              const DurationModel& model);

}  // namespace mwc::charging
