#include "viz/svg.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace mwc::viz {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

SvgCanvas::SvgCanvas(const geom::BBox& world, double width_px,
                     double margin_px)
    : world_(world), width_px_(width_px), margin_px_(margin_px) {
  MWC_ASSERT(world.width() > 0.0 && world.height() > 0.0);
  MWC_ASSERT(width_px > 2.0 * margin_px);
  scale_ = (width_px - 2.0 * margin_px) / world.width();
  height_px_ = world.height() * scale_ + 2.0 * margin_px;
}

geom::Point SvgCanvas::to_px(const geom::Point& p) const {
  return {margin_px_ + (p.x - world_.lo.x) * scale_,
          height_px_ - margin_px_ - (p.y - world_.lo.y) * scale_};
}

void SvgCanvas::circle(const geom::Point& center, double radius_px,
                       const std::string& fill, const std::string& stroke,
                       double stroke_width) {
  const auto c = to_px(center);
  body_ += "<circle cx=\"" + fmt(c.x) + "\" cy=\"" + fmt(c.y) +
           "\" r=\"" + fmt(radius_px) + "\" fill=\"" + fill +
           "\" stroke=\"" + stroke + "\" stroke-width=\"" +
           fmt(stroke_width) + "\"/>\n";
}

void SvgCanvas::line(const geom::Point& a, const geom::Point& b,
                     const std::string& stroke, double width,
                     double opacity) {
  const auto pa = to_px(a);
  const auto pb = to_px(b);
  body_ += "<line x1=\"" + fmt(pa.x) + "\" y1=\"" + fmt(pa.y) +
           "\" x2=\"" + fmt(pb.x) + "\" y2=\"" + fmt(pb.y) +
           "\" stroke=\"" + stroke + "\" stroke-width=\"" + fmt(width) +
           "\" stroke-opacity=\"" + fmt(opacity) + "\"/>\n";
}

void SvgCanvas::polyline(const std::vector<geom::Point>& points, bool closed,
                         const std::string& stroke, double width,
                         double opacity) {
  if (points.size() < 2) return;
  body_ += closed ? "<polygon points=\"" : "<polyline points=\"";
  for (const auto& p : points) {
    const auto px = to_px(p);
    body_ += fmt(px.x) + "," + fmt(px.y) + " ";
  }
  body_ += "\" fill=\"none\" stroke=\"" + stroke + "\" stroke-width=\"" +
           fmt(width) + "\" stroke-opacity=\"" + fmt(opacity) + "\"/>\n";
}

void SvgCanvas::square(const geom::Point& center, double half_px,
                       const std::string& fill) {
  const auto c = to_px(center);
  body_ += "<rect x=\"" + fmt(c.x - half_px) + "\" y=\"" +
           fmt(c.y - half_px) + "\" width=\"" + fmt(2 * half_px) +
           "\" height=\"" + fmt(2 * half_px) + "\" fill=\"" + fill +
           "\"/>\n";
}

void SvgCanvas::text(const geom::Point& at, const std::string& content,
                     double size_px, const std::string& fill) {
  const auto p = to_px(at);
  body_ += "<text x=\"" + fmt(p.x) + "\" y=\"" + fmt(p.y) +
           "\" font-size=\"" + fmt(size_px) +
           "\" font-family=\"sans-serif\" fill=\"" + fill + "\">" +
           content + "</text>\n";
}

std::string SvgCanvas::str() const {
  std::string doc =
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
      fmt(width_px_) + "\" height=\"" + fmt(height_px_) +
      "\" viewBox=\"0 0 " + fmt(width_px_) + " " + fmt(height_px_) +
      "\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  doc += body_;
  doc += "</svg>\n";
  return doc;
}

void SvgCanvas::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SvgCanvas: cannot open " + path);
  out << str();
}

const std::string& tour_color(std::size_t index) {
  static const std::array<std::string, 8> kPalette = {
      "#0072B2", "#E69F00", "#009E73", "#CC79A7",
      "#56B4E9", "#D55E00", "#F0E442", "#000000"};
  return kPalette[index % kPalette.size()];
}

}  // namespace mwc::viz
