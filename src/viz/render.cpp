#include "viz/render.hpp"

#include <string>

#include "util/assert.hpp"

namespace mwc::viz {

namespace {

void draw_base_layer(SvgCanvas& canvas, const wsn::Network& network,
                     const RenderOptions& options) {
  for (const auto& sensor : network.sensors()) {
    canvas.circle(sensor.position, options.sensor_radius_px, "#888");
  }
  canvas.circle(network.base_station(), options.sensor_radius_px * 2.2,
                "#D55E00", "#333", 1.0);
  for (std::size_t l = 0; l < network.q(); ++l) {
    canvas.square(network.depots()[l], options.sensor_radius_px * 1.8,
                  tour_color(l));
    if (options.label_depots) {
      canvas.text(network.depots()[l] + geom::Point{8.0, 8.0},
                  "D" + std::to_string(l));
    }
  }
}

}  // namespace

SvgCanvas render_network(const wsn::Network& network,
                         const RenderOptions& options) {
  SvgCanvas canvas(network.field(), options.width_px);
  draw_base_layer(canvas, network, options);
  return canvas;
}

SvgCanvas render_round(const wsn::Network& network,
                       const std::vector<std::size_t>& sensor_ids,
                       const tsp::QRootedTours& tours,
                       const RenderOptions& options) {
  SvgCanvas canvas(network.field(), options.width_px);

  const std::size_t q = network.q();
  MWC_ASSERT(tours.tours.size() == q);
  const auto node_point = [&](std::size_t combined) -> geom::Point {
    if (combined < q) return network.depots()[combined];
    const std::size_t sensor_id = sensor_ids[combined - q];
    return network.sensor(sensor_id).position;
  };

  for (std::size_t l = 0; l < q; ++l) {
    const auto& order = tours.tours[l].order();
    if (order.size() < 2) continue;
    std::vector<geom::Point> pts;
    pts.reserve(order.size());
    for (std::size_t v : order) pts.push_back(node_point(v));
    canvas.polyline(pts, /*closed=*/true, tour_color(l), 1.8, 0.85);
  }
  draw_base_layer(canvas, network, options);
  // Highlight the charged sensors over the base layer.
  for (std::size_t id : sensor_ids) {
    canvas.circle(network.sensor(id).position,
                  options.sensor_radius_px * 1.2, "#0072B2");
  }
  return canvas;
}

SvgCanvas render_routing_tree(const wsn::Network& network,
                              const wsn::EnergyProfile& profile,
                              const RenderOptions& options) {
  SvgCanvas canvas(network.field(), options.width_px);
  MWC_ASSERT(profile.route_parent.size() == network.n());
  for (std::size_t v = 0; v < network.n(); ++v) {
    const std::size_t parent = profile.route_parent[v];
    const geom::Point to = parent == wsn::EnergyProfile::kToBaseStation
                               ? network.base_station()
                               : network.sensor(parent).position;
    canvas.line(network.sensor(v).position, to, "#009E73", 1.0, 0.6);
  }
  draw_base_layer(canvas, network, options);
  return canvas;
}

}  // namespace mwc::viz
