// Minimal SVG line charts — enough to replicate the paper's figures
// (service cost vs a swept parameter, one line per algorithm) without any
// plotting dependency. Axes with tick labels, legend, markers.
#pragma once

#include <string>
#include <vector>

namespace mwc::viz {

struct Series {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;  ///< same length as xs
};

struct ChartOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  double width_px = 640.0;
  double height_px = 420.0;
  /// Force the y axis to start at zero (the paper's figures do).
  bool y_from_zero = true;
  std::size_t x_ticks = 6;
  std::size_t y_ticks = 6;
};

/// Renders the chart as a complete SVG document.
std::string render_line_chart(const std::vector<Series>& series,
                              const ChartOptions& options);

/// Renders and writes to `path`. Throws std::runtime_error on failure.
void save_line_chart(const std::vector<Series>& series,
                     const ChartOptions& options, const std::string& path);

/// "Nice" tick step >= span/max_ticks (1/2/5 x 10^k). Exposed for tests.
double nice_tick_step(double span, std::size_t max_ticks);

}  // namespace mwc::viz
