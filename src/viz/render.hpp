// High-level renderers: deployments, routing trees, and charging tours to
// SVG. Used by the tour_map example and handy when debugging schedules.
#pragma once

#include <string>

#include "tsp/qrooted.hpp"
#include "viz/svg.hpp"
#include "wsn/energy.hpp"
#include "wsn/network.hpp"

namespace mwc::viz {

struct RenderOptions {
  double width_px = 800.0;
  bool label_depots = true;
  /// Scale sensor dot size by this many px.
  double sensor_radius_px = 3.0;
};

/// Network only: sensors (dots), base station (large dot), depots
/// (squares).
SvgCanvas render_network(const wsn::Network& network,
                         const RenderOptions& options = {});

/// Network plus one charging round's q tours, one color per charger.
/// `tours` must come from an instance built over `sensor_ids` in order
/// (combined indexing: depots first).
SvgCanvas render_round(const wsn::Network& network,
                       const std::vector<std::size_t>& sensor_ids,
                       const tsp::QRootedTours& tours,
                       const RenderOptions& options = {});

/// Network plus the multihop routing tree of an energy profile.
SvgCanvas render_routing_tree(const wsn::Network& network,
                              const wsn::EnergyProfile& profile,
                              const RenderOptions& options = {});

}  // namespace mwc::viz
