#include "viz/chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "util/assert.hpp"
#include "viz/svg.hpp"

namespace mwc::viz {

namespace {

std::string fmt(double v) {
  char buf[32];
  if (std::abs(v) >= 1000.0 || v == std::floor(v)) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2g", v);
  }
  return buf;
}

std::string fmt_px(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

double nice_tick_step(double span, std::size_t max_ticks) {
  MWC_ASSERT(span > 0.0 && max_ticks >= 2);
  const double raw = span / static_cast<double>(max_ticks);
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  for (double mult : {1.0, 2.0, 5.0, 10.0}) {
    if (mag * mult >= raw) return mag * mult;
  }
  return mag * 10.0;
}

std::string render_line_chart(const std::vector<Series>& series,
                              const ChartOptions& options) {
  MWC_ASSERT_MSG(!series.empty(), "chart needs at least one series");
  double x_lo = std::numeric_limits<double>::infinity(), x_hi = -x_lo;
  double y_lo = std::numeric_limits<double>::infinity(), y_hi = -y_lo;
  for (const auto& s : series) {
    MWC_ASSERT_MSG(s.xs.size() == s.ys.size(), "ragged series");
    MWC_ASSERT_MSG(!s.xs.empty(), "empty series");
    for (double x : s.xs) {
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
    }
    for (double y : s.ys) {
      y_lo = std::min(y_lo, y);
      y_hi = std::max(y_hi, y);
    }
  }
  if (options.y_from_zero) y_lo = std::min(y_lo, 0.0);
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_hi == y_lo) y_hi = y_lo + 1.0;
  y_hi *= 1.05;  // headroom

  const double ml = 70.0, mr = 20.0, mt = 40.0, mb = 55.0;
  const double plot_w = options.width_px - ml - mr;
  const double plot_h = options.height_px - mt - mb;
  const auto px = [&](double x) {
    return ml + (x - x_lo) / (x_hi - x_lo) * plot_w;
  };
  const auto py = [&](double y) {
    return mt + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h;
  };

  std::string doc =
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
      fmt_px(options.width_px) + "\" height=\"" +
      fmt_px(options.height_px) + "\">\n" +
      "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Gridlines + ticks.
  const double x_step = nice_tick_step(x_hi - x_lo, options.x_ticks);
  const double y_step = nice_tick_step(y_hi - y_lo, options.y_ticks);
  for (double x = std::ceil(x_lo / x_step) * x_step; x <= x_hi + 1e-9;
       x += x_step) {
    doc += "<line x1=\"" + fmt_px(px(x)) + "\" y1=\"" + fmt_px(mt) +
           "\" x2=\"" + fmt_px(px(x)) + "\" y2=\"" + fmt_px(mt + plot_h) +
           "\" stroke=\"#eee\"/>\n";
    doc += "<text x=\"" + fmt_px(px(x)) + "\" y=\"" +
           fmt_px(mt + plot_h + 18) +
           "\" font-size=\"11\" font-family=\"sans-serif\" "
           "text-anchor=\"middle\">" +
           fmt(x) + "</text>\n";
  }
  for (double y = std::ceil(y_lo / y_step) * y_step; y <= y_hi + 1e-9;
       y += y_step) {
    doc += "<line x1=\"" + fmt_px(ml) + "\" y1=\"" + fmt_px(py(y)) +
           "\" x2=\"" + fmt_px(ml + plot_w) + "\" y2=\"" + fmt_px(py(y)) +
           "\" stroke=\"#eee\"/>\n";
    doc += "<text x=\"" + fmt_px(ml - 6) + "\" y=\"" + fmt_px(py(y) + 4) +
           "\" font-size=\"11\" font-family=\"sans-serif\" "
           "text-anchor=\"end\">" +
           fmt(y) + "</text>\n";
  }

  // Axes.
  doc += "<line x1=\"" + fmt_px(ml) + "\" y1=\"" + fmt_px(mt + plot_h) +
         "\" x2=\"" + fmt_px(ml + plot_w) + "\" y2=\"" +
         fmt_px(mt + plot_h) + "\" stroke=\"#333\"/>\n";
  doc += "<line x1=\"" + fmt_px(ml) + "\" y1=\"" + fmt_px(mt) +
         "\" x2=\"" + fmt_px(ml) + "\" y2=\"" + fmt_px(mt + plot_h) +
         "\" stroke=\"#333\"/>\n";

  // Labels + title.
  doc += "<text x=\"" + fmt_px(ml + plot_w / 2) + "\" y=\"" +
         fmt_px(options.height_px - 12) +
         "\" font-size=\"13\" font-family=\"sans-serif\" "
         "text-anchor=\"middle\">" +
         options.x_label + "</text>\n";
  doc += "<text x=\"16\" y=\"" + fmt_px(mt + plot_h / 2) +
         "\" font-size=\"13\" font-family=\"sans-serif\" "
         "text-anchor=\"middle\" transform=\"rotate(-90 16 " +
         fmt_px(mt + plot_h / 2) + ")\">" + options.y_label + "</text>\n";
  doc += "<text x=\"" + fmt_px(options.width_px / 2) +
         "\" y=\"22\" font-size=\"15\" font-family=\"sans-serif\" "
         "text-anchor=\"middle\">" +
         options.title + "</text>\n";

  // Series with markers + legend.
  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto& color = tour_color(s);
    std::string pts;
    for (std::size_t i = 0; i < series[s].xs.size(); ++i) {
      pts += fmt_px(px(series[s].xs[i])) + "," +
             fmt_px(py(series[s].ys[i])) + " ";
    }
    doc += "<polyline points=\"" + pts + "\" fill=\"none\" stroke=\"" +
           color + "\" stroke-width=\"2\"/>\n";
    for (std::size_t i = 0; i < series[s].xs.size(); ++i) {
      doc += "<circle cx=\"" + fmt_px(px(series[s].xs[i])) + "\" cy=\"" +
             fmt_px(py(series[s].ys[i])) + "\" r=\"3.5\" fill=\"" + color +
             "\"/>\n";
    }
    const double ly = mt + 10 + 18 * static_cast<double>(s);
    doc += "<line x1=\"" + fmt_px(ml + 12) + "\" y1=\"" + fmt_px(ly) +
           "\" x2=\"" + fmt_px(ml + 40) + "\" y2=\"" + fmt_px(ly) +
           "\" stroke=\"" + color + "\" stroke-width=\"2\"/>\n";
    doc += "<text x=\"" + fmt_px(ml + 46) + "\" y=\"" + fmt_px(ly + 4) +
           "\" font-size=\"12\" font-family=\"sans-serif\">" +
           series[s].label + "</text>\n";
  }
  doc += "</svg>\n";
  return doc;
}

void save_line_chart(const std::vector<Series>& series,
                     const ChartOptions& options, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_line_chart: cannot open " + path);
  out << render_line_chart(series, options);
}

}  // namespace mwc::viz
