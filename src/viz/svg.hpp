// Minimal SVG canvas — enough to draw deployments, routing trees, and
// charging tours for reports and debugging (no external dependencies).
// Y-axis is flipped so field coordinates render in the conventional
// "origin at bottom-left" orientation.
#pragma once

#include <string>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/point.hpp"

namespace mwc::viz {

class SvgCanvas {
 public:
  /// `world` is the region drawn; `width_px` fixes the raster width, the
  /// height follows the world aspect ratio. `margin_px` pads all sides.
  SvgCanvas(const geom::BBox& world, double width_px = 800.0,
            double margin_px = 20.0);

  void circle(const geom::Point& center, double radius_px,
              const std::string& fill, const std::string& stroke = "none",
              double stroke_width = 1.0);

  void line(const geom::Point& a, const geom::Point& b,
            const std::string& stroke, double width = 1.0,
            double opacity = 1.0);

  /// Polyline through world points; closed polylines return to the start.
  void polyline(const std::vector<geom::Point>& points, bool closed,
                const std::string& stroke, double width = 1.5,
                double opacity = 1.0);

  /// Small square marker (used for depots).
  void square(const geom::Point& center, double half_px,
              const std::string& fill);

  void text(const geom::Point& at, const std::string& content,
            double size_px = 12.0, const std::string& fill = "#333");

  /// Completed SVG document.
  std::string str() const;

  /// Writes the document to `path`. Throws std::runtime_error on failure.
  void save(const std::string& path) const;

 private:
  geom::Point to_px(const geom::Point& world_point) const;

  geom::BBox world_;
  double width_px_;
  double height_px_;
  double margin_px_;
  double scale_;
  std::string body_;
};

/// Categorical palette (color-blind-safe Okabe-Ito) for per-charger tours.
const std::string& tour_color(std::size_t index);

}  // namespace mwc::viz
