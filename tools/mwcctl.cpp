// mwcctl — command-line client for the mwc.svc.admin.v1 endpoint.
//
// Talks to a running mwcd over TCP, sends one admin request, and
// pretty-prints the response for humans (or emits machine-readable
// payloads for scripts):
//
//   mwcctl statusz --connect 127.0.0.1:9191
//   mwcctl metrics --connect 127.0.0.1:9191 --openmetrics --out met.txt
//   mwcctl tracez  --connect 127.0.0.1:9191 --limit 5
//   mwcctl config  --connect 127.0.0.1:9191
//
// Flags:
//   --connect HOST:PORT  daemon address (required)
//   --openmetrics        metrics only: request the OpenMetrics text form
//   --limit N            tracez only: slowest-N window (default 10)
//   --raw                print the raw JSONL response line and exit
//   --out FILE           write the payload to FILE instead of stdout:
//                        the OpenMetrics text (--openmetrics), the
//                        mwc.metrics.v1 JSON (metrics), or the response
//                        section JSON (statusz/tracez/config)
//
// Exits 0 on an ok response, 1 on transport/daemon errors, 2 on usage
// errors.
#include <cstdio>
#include <cstring>
#include <string>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "svc/json.hpp"
#include "util/cli.hpp"

namespace {

using mwc::svc::Json;

int connect_tcp(const std::string& hostport) {
  const auto colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "mwcctl: --connect wants HOST:PORT\n");
    return -1;
  }
  const std::string host = hostport.substr(0, colon);
  const std::string port = hostport.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &info) != 0 ||
      info == nullptr) {
    std::fprintf(stderr, "mwcctl: cannot resolve %s\n", hostport.c_str());
    return -1;
  }
  const int fd = ::socket(info->ai_family, info->ai_socktype, 0);
  const bool ok =
      fd >= 0 && ::connect(fd, info->ai_addr, info->ai_addrlen) == 0;
  ::freeaddrinfo(info);
  if (!ok) {
    std::perror("mwcctl: connect");
    if (fd >= 0) ::close(fd);
    return -1;
  }
  return fd;
}

/// One round trip: send `request` (newline appended), read one line.
bool round_trip(int fd, const std::string& request, std::string* response) {
  const std::string line = request + "\n";
  if (::write(fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    std::perror("mwcctl: write");
    return false;
  }
  response->clear();
  char byte;
  ssize_t got;
  while ((got = ::read(fd, &byte, 1)) == 1) {
    if (byte == '\n') return true;
    response->push_back(byte);
  }
  std::fprintf(stderr, "mwcctl: connection closed before a response\n");
  return false;
}

std::string scalar_to_string(const Json& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  if (v.is_null()) return "null";
  if (v.is_number()) {
    char buf[64];
    const double d = v.as_double();
    if (d == static_cast<double>(static_cast<std::int64_t>(d)))
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(d));
    else
      std::snprintf(buf, sizeof buf, "%.6g", d);
    return buf;
  }
  return v.dump();
}

/// Indented `key: value` rendering of nested objects (statusz, config).
void print_tree(const Json& node, int depth) {
  for (const auto& [key, value] : node.members()) {
    if (value.is_object()) {
      std::printf("%*s%s:\n", depth * 2, "", key.c_str());
      print_tree(value, depth + 1);
    } else {
      std::printf("%*s%-18s %s\n", depth * 2, "", (key + ":").c_str(),
                  scalar_to_string(value).c_str());
    }
  }
}

void print_tracez(const Json& tracez) {
  std::printf("recent-request ring: capacity %s, showing %s slowest\n",
              scalar_to_string(tracez.at("ring_capacity")).c_str(),
              scalar_to_string(tracez.at("count")).c_str());
  std::printf("%-18s %-8s %-6s %-22s %-12s %9s  %s\n", "trace_id", "id",
              "kind", "policy", "outcome", "total_ms", "stages_ms");
  for (const Json& r : tracez.at("slowest").items()) {
    const Json& t = r.at("t");
    char stages[160];
    std::snprintf(stages, sizeof stages,
                  "parse %.3f queue %.3f cache %.3f solve %.3f ser %.3f",
                  t.at("parse_ms").as_double(),
                  t.at("queue_ms").as_double(),
                  t.at("cache_ms").as_double(),
                  t.at("solve_ms").as_double(),
                  t.at("serialize_ms").as_double());
    std::printf("%-18s %-8s %-6s %-22s %-12s %9.3f  %s\n",
                r.at("trace_id").as_string().c_str(),
                r.at("id").as_string().c_str(),
                r.at("kind").as_string().c_str(),
                r.at("policy").as_string().c_str(),
                r.at("outcome").as_string().c_str(),
                r.at("latency_ms").as_double(), stages);
  }
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror("mwcctl: fopen --out");
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  mwc::CliArgs args(argc, argv);
  const auto& positional = args.positional();
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: mwcctl statusz|metrics|tracez|config "
                 "--connect HOST:PORT [--openmetrics] [--limit N] "
                 "[--raw] [--out FILE]\n");
    return 2;
  }
  const std::string command = positional.front();
  if (command != "statusz" && command != "metrics" && command != "tracez" &&
      command != "config") {
    std::fprintf(stderr, "mwcctl: unknown command %s\n", command.c_str());
    return 2;
  }
  const std::string connect = args.get_or("connect", "");
  if (connect.empty()) {
    std::fprintf(stderr, "mwcctl: --connect HOST:PORT is required\n");
    return 2;
  }
  const bool openmetrics = args.get_bool_or("openmetrics", false);
  if (openmetrics && command != "metrics") {
    std::fprintf(stderr, "mwcctl: --openmetrics only applies to metrics\n");
    return 2;
  }

  Json request = Json::object();
  request.set("admin", Json(command));
  request.set("id", Json("mwcctl"));
  if (openmetrics) request.set("format", Json("openmetrics"));
  if (command == "tracez")
    request.set("limit",
                Json(static_cast<std::int64_t>(args.get_int_or("limit", 10))));

  const int fd = connect_tcp(connect);
  if (fd < 0) return 1;
  std::string response_line;
  const bool got = round_trip(fd, request.dump(), &response_line);
  ::close(fd);
  if (!got) return 1;

  if (args.get_bool_or("raw", false)) {
    std::printf("%s\n", response_line.c_str());
    return 0;
  }

  Json response;
  try {
    response = Json::parse(response_line);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mwcctl: bad response: %s\n", e.what());
    return 1;
  }
  if (!response.at("ok").as_bool()) {
    std::fprintf(stderr, "mwcctl: daemon error: %s\n",
                 response.find("message") != nullptr
                     ? response.at("message").as_string().c_str()
                     : response.at("error").as_string().c_str());
    return 1;
  }

  const std::string out_path = args.get_or("out", "");
  try {
    if (command == "metrics" && openmetrics) {
      const std::string& text = response.at("openmetrics").as_string();
      if (!out_path.empty()) return write_file(out_path, text) ? 0 : 1;
      std::fwrite(text.data(), 1, text.size(), stdout);
      return 0;
    }
    const char* section = command == "metrics" ? "metrics" : command.c_str();
    const Json& payload = response.at(section);
    if (!out_path.empty())
      return write_file(out_path, payload.dump() + "\n") ? 0 : 1;
    if (command == "tracez") {
      print_tracez(payload);
    } else if (command == "metrics") {
      std::printf("%s\n", payload.dump().c_str());
    } else {
      print_tree(payload, 0);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mwcctl: malformed response payload: %s\n",
                 e.what());
    return 1;
  }
  return 0;
}
