# Empty dependencies file for mwc_loadgen.
# This may be replaced when dependencies are built.
