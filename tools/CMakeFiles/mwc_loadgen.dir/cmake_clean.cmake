file(REMOVE_RECURSE
  "CMakeFiles/mwc_loadgen.dir/mwc_loadgen.cpp.o"
  "CMakeFiles/mwc_loadgen.dir/mwc_loadgen.cpp.o.d"
  "mwc_loadgen"
  "mwc_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwc_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
