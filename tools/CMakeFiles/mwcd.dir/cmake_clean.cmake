file(REMOVE_RECURSE
  "CMakeFiles/mwcd.dir/mwcd.cpp.o"
  "CMakeFiles/mwcd.dir/mwcd.cpp.o.d"
  "mwcd"
  "mwcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
