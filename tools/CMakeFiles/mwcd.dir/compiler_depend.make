# Empty compiler generated dependencies file for mwcd.
# This may be replaced when dependencies are built.
