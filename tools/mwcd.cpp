// mwcd — the mwc::svc scheduling daemon.
//
// Speaks the mwc.svc.v1/v2 JSONL wire protocol (one request per line, one
// response per line, matched by id; see docs/SERVICE.md) plus the
// mwc.svc.admin.v1 introspection family ({"admin":"statusz|metrics|
// tracez|config"}, see docs/OBSERVABILITY.md) on the same transport.
// Two transports:
//
//   * stdin/stdout (default): reads requests until EOF or SIGINT/SIGTERM,
//     then drains all accepted work and exits — the mode mwc_loadgen and
//     the CI smoke job drive through a pipe;
//   * TCP (--port N): listens on 127.0.0.1:N, one thread per connection,
//     same line protocol per connection; SIGINT/SIGTERM stops accepting
//     and drains.
//
// Both transports write the --metrics-out / --trace-out sidecars on
// *every* graceful exit path, signals included (stdio uses a self-pipe so
// a Ctrl-C'd run doesn't lose its metrics).
//
// Flags:
//   --queue-depth N          max in-flight requests before queue_full (64)
//   --threads N              solver worker threads (0 = hardware)
//   --cache-capacity N       PlanCache capacity in plans; 0 disables (128)
//   --port N                 serve TCP on 127.0.0.1:N instead of stdio
//   --metrics-out FILE       write the global obs registry (mwc.metrics.v1
//                            JSON) after draining
//   --trace-out FILE         enable span collection, write a Chrome trace
//   --access-log FILE        append one JSONL line per completed request
//   --access-log-slow-ms MS  only log requests slower than MS (0 = all)
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <functional>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "svc/access_log.hpp"
#include "svc/admin.hpp"
#include "svc/server.hpp"
#include "svc/wire.hpp"
#include "util/cli.hpp"

namespace {

using mwc::svc::AdminHandler;
using mwc::svc::Response;
using mwc::svc::Server;

/// Serializes responses onto one stream; callbacks fire from any worker.
class LineSink {
 public:
  explicit LineSink(std::FILE* out) : out_(out) {}

  void write(const Response& response) {
    write_line(mwc::svc::to_jsonl(response));
  }

  /// Raw pre-serialized JSONL line (admin responses).
  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fflush(out_);
  }

 private:
  std::FILE* out_;
  std::mutex mutex_;
};

/// Dispatches one inbound line: admin requests answer synchronously,
/// everything else goes through the server's admission path.
void dispatch_line(Server& server, const AdminHandler& admin,
                   const std::string& line, LineSink& sink, const char* peer,
                   const std::function<void(const Response&)>& callback) {
  std::string admin_response;
  if (admin.try_handle(line, &admin_response)) {
    sink.write_line(admin_response);
    return;
  }
  server.submit_line(line, callback, peer);
}

// Self-pipe: signal handlers write one byte, the stdio poll loop wakes
// up and begins a graceful drain — so SIGINT/SIGTERM runs still write
// their --metrics-out / --trace-out sidecars (async-signal-safe, unlike
// doing the drain in the handler).
std::atomic<int> g_signal_pipe_w{-1};

void notify_signal_pipe(int) {
  const int fd = g_signal_pipe_w.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

int run_stdio(Server& server, const AdminHandler& admin) {
  LineSink sink(stdout);
  const auto callback = [&sink](const Response& r) { sink.write(r); };

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    std::perror("pipe");
    return 1;
  }
  g_signal_pipe_w.store(pipe_fds[1], std::memory_order_relaxed);
  std::signal(SIGINT, notify_signal_pipe);
  std::signal(SIGTERM, notify_signal_pipe);

  std::string pending;
  char buffer[65536];
  bool signaled = false;
  while (!signaled) {
    pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {pipe_fds[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;  // handler ran before the pipe write
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) {
      signaled = true;  // drain accepted work, skip unread input
      break;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP)) == 0) continue;
    const ssize_t got = ::read(STDIN_FILENO, buffer, sizeof buffer);
    if (got <= 0) break;  // EOF (or read error): drain and exit
    pending.append(buffer, static_cast<std::size_t>(got));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      while (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty())
        dispatch_line(server, admin, line, sink, "stdio", callback);
    }
    pending.erase(0, start);
  }
  // A final unterminated line is still a request (EOF ends it).
  while (!pending.empty() &&
         (pending.back() == '\n' || pending.back() == '\r'))
    pending.pop_back();
  if (!pending.empty() && !signaled)
    dispatch_line(server, admin, pending, sink, "stdio", callback);

  g_signal_pipe_w.store(-1, std::memory_order_relaxed);
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
  server.shutdown();
  return 0;
}

std::atomic<int> g_listen_fd{-1};

void stop_listening(int) {
  const int fd = g_listen_fd.exchange(-1);
  if (fd >= 0) ::close(fd);  // unblocks accept() with an error
}

void serve_connection(Server& server, const AdminHandler& admin, int fd) {
  std::FILE* in = ::fdopen(fd, "r");
  if (in == nullptr) {
    ::close(fd);
    return;
  }
  std::FILE* out = ::fdopen(::dup(fd), "w");
  if (out == nullptr) {
    std::fclose(in);
    return;
  }
  {
    LineSink sink(out);
    // Per-connection tally of submitted-vs-answered so the close below
    // never races a worker still holding the sink.
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t pending = 0;
    const auto callback = [&](const Response& r) {
      sink.write(r);
      std::lock_guard<std::mutex> lock(done_mutex);
      --pending;
      done_cv.notify_all();
    };
    char* buffer = nullptr;
    std::size_t buffer_size = 0;
    ssize_t got;
    while ((got = ::getline(&buffer, &buffer_size, in)) > 0) {
      std::string line(buffer, static_cast<std::size_t>(got));
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
      if (line.empty()) continue;
      std::string admin_response;
      if (admin.try_handle(line, &admin_response)) {
        sink.write_line(admin_response);
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        ++pending;
      }
      server.submit_line(line, callback, "tcp");
    }
    std::free(buffer);
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return pending == 0; });
  }
  std::fclose(out);
  std::fclose(in);
}

int run_tcp(Server& server, const AdminHandler& admin, int port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd, 16) < 0) {
    std::perror("bind/listen");
    ::close(listen_fd);
    return 1;
  }
  g_listen_fd.store(listen_fd);
  std::signal(SIGINT, stop_listening);
  std::signal(SIGTERM, stop_listening);
  std::fprintf(stderr, "mwcd: listening on 127.0.0.1:%d\n", port);

  std::vector<std::thread> connections;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listener closed by a stop signal
    connections.emplace_back(
        [&server, &admin, fd] { serve_connection(server, admin, fd); });
  }
  for (auto& t : connections) t.join();
  server.shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  mwc::CliArgs args(argc, argv);
  const double start_us = mwc::obs::now_us();

  mwc::svc::ServerOptions options;
  options.queue_capacity =
      static_cast<std::size_t>(args.get_int_or("queue-depth", 64));
  options.threads = static_cast<std::size_t>(args.get_int_or("threads", 0));
  options.cache_capacity =
      static_cast<std::size_t>(args.get_int_or("cache-capacity", 128));
  const std::string metrics_path = args.get_or("metrics-out", "");
  const std::string trace_path = args.get_or("trace-out", "");
  const std::string access_log_path = args.get_or("access-log", "");
  const double access_log_slow_ms =
      args.get_double_or("access-log-slow-ms", 0.0);
  const int port = static_cast<int>(args.get_int_or("port", 0));
  if (!trace_path.empty()) mwc::obs::set_trace_enabled(true);

  std::unique_ptr<mwc::svc::AccessLog> access_log;
  if (!access_log_path.empty()) {
    access_log = std::make_unique<mwc::svc::AccessLog>(access_log_path,
                                                       access_log_slow_ms);
    if (!access_log->ok()) {
      std::fprintf(stderr, "mwcd: cannot open access log %s\n",
                   access_log_path.c_str());
      return 1;
    }
    options.access_log = access_log.get();
  }

  int rc;
  {
    Server server(options);
    mwc::svc::AdminInfo info;
    info.build = std::string("mwcd libmwc/1.0.0 (obs ") +
                 (MWC_OBS_ENABLED != 0 ? "on" : "off") + ")";
    info.transport = port > 0 ? "tcp" : "stdio";
    info.start_us = start_us;
    info.metrics_out = metrics_path;
    info.trace_out = trace_path;
    AdminHandler admin(server, info);
    rc = port > 0 ? run_tcp(server, admin, port) : run_stdio(server, admin);
  }

  // The log is asynchronous; tear it down before the sidecars so that
  // once metrics.json exists, every access-log line is on disk too.
  access_log.reset();

  if (!metrics_path.empty() &&
      !mwc::obs::Registry::global().write_json(metrics_path)) {
    std::fprintf(stderr, "mwcd: cannot write %s\n", metrics_path.c_str());
    rc = rc == 0 ? 1 : rc;
  }
  if (!trace_path.empty() && !mwc::obs::write_chrome_trace(trace_path)) {
    std::fprintf(stderr, "mwcd: cannot write %s\n", trace_path.c_str());
    rc = rc == 0 ? 1 : rc;
  }
  return rc;
}
