// mwcd — the mwc::svc scheduling daemon.
//
// Speaks the mwc.svc.v1 JSONL wire protocol (one request per line, one
// response per line, matched by id; see docs/SERVICE.md). Two transports:
//
//   * stdin/stdout (default): reads requests until EOF, then drains all
//     accepted work and exits — the mode mwc_loadgen and the CI smoke
//     job drive through a pipe;
//   * TCP (--port N): listens on 127.0.0.1:N, one thread per connection,
//     same line protocol per connection; SIGINT/SIGTERM stops accepting
//     and drains.
//
// Flags:
//   --queue-depth N      max in-flight requests before queue_full (64)
//   --threads N          solver worker threads (0 = hardware)
//   --cache-capacity N   PlanCache capacity in plans; 0 disables (128)
//   --port N             serve TCP on 127.0.0.1:N instead of stdin/stdout
//   --metrics-out FILE   write the global obs registry (mwc.metrics.v1
//                        JSON) after draining
//   --trace-out FILE     enable span collection, write a Chrome trace
#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "svc/server.hpp"
#include "svc/wire.hpp"
#include "util/cli.hpp"

namespace {

using mwc::svc::Response;
using mwc::svc::Server;

/// Serializes responses onto one stream; callbacks fire from any worker.
class LineSink {
 public:
  explicit LineSink(std::FILE* out) : out_(out) {}

  void write(const Response& response) {
    const std::string line = mwc::svc::to_jsonl(response);
    std::lock_guard<std::mutex> lock(mutex_);
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fflush(out_);
  }

 private:
  std::FILE* out_;
  std::mutex mutex_;
};

int run_stdio(Server& server) {
  LineSink sink(stdout);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    server.submit_line(line, [&sink](const Response& r) { sink.write(r); });
  }
  server.shutdown();
  return 0;
}

std::atomic<int> g_listen_fd{-1};

void stop_listening(int) {
  const int fd = g_listen_fd.exchange(-1);
  if (fd >= 0) ::close(fd);  // unblocks accept() with an error
}

void serve_connection(Server& server, int fd) {
  std::FILE* in = ::fdopen(fd, "r");
  if (in == nullptr) {
    ::close(fd);
    return;
  }
  std::FILE* out = ::fdopen(::dup(fd), "w");
  if (out == nullptr) {
    std::fclose(in);
    return;
  }
  {
    LineSink sink(out);
    // Per-connection tally of submitted-vs-answered so the close below
    // never races a worker still holding the sink.
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t pending = 0;
    char* buffer = nullptr;
    std::size_t buffer_size = 0;
    ssize_t got;
    while ((got = ::getline(&buffer, &buffer_size, in)) > 0) {
      std::string line(buffer, static_cast<std::size_t>(got));
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
      if (line.empty()) continue;
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        ++pending;
      }
      server.submit_line(line, [&](const Response& r) {
        sink.write(r);
        std::lock_guard<std::mutex> lock(done_mutex);
        --pending;
        done_cv.notify_all();
      });
    }
    std::free(buffer);
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return pending == 0; });
  }
  std::fclose(out);
  std::fclose(in);
}

int run_tcp(Server& server, int port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd, 16) < 0) {
    std::perror("bind/listen");
    ::close(listen_fd);
    return 1;
  }
  g_listen_fd.store(listen_fd);
  std::signal(SIGINT, stop_listening);
  std::signal(SIGTERM, stop_listening);
  std::fprintf(stderr, "mwcd: listening on 127.0.0.1:%d\n", port);

  std::vector<std::thread> connections;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listener closed by a stop signal
    connections.emplace_back(
        [&server, fd] { serve_connection(server, fd); });
  }
  for (auto& t : connections) t.join();
  server.shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  mwc::CliArgs args(argc, argv);

  mwc::svc::ServerOptions options;
  options.queue_capacity =
      static_cast<std::size_t>(args.get_int_or("queue-depth", 64));
  options.threads = static_cast<std::size_t>(args.get_int_or("threads", 0));
  options.cache_capacity =
      static_cast<std::size_t>(args.get_int_or("cache-capacity", 128));
  const std::string metrics_path = args.get_or("metrics-out", "");
  const std::string trace_path = args.get_or("trace-out", "");
  const int port = static_cast<int>(args.get_int_or("port", 0));
  if (!trace_path.empty()) mwc::obs::set_trace_enabled(true);

  int rc;
  {
    Server server(options);
    rc = port > 0 ? run_tcp(server, port) : run_stdio(server);
  }

  if (!metrics_path.empty() &&
      !mwc::obs::Registry::global().write_json(metrics_path)) {
    std::fprintf(stderr, "mwcd: cannot write %s\n", metrics_path.c_str());
    rc = rc == 0 ? 1 : rc;
  }
  if (!trace_path.empty() && !mwc::obs::write_chrome_trace(trace_path)) {
    std::fprintf(stderr, "mwcd: cannot write %s\n", trace_path.c_str());
    rc = rc == 0 ? 1 : rc;
  }
  return rc;
}
