// mwcd — the mwc::svc scheduling daemon.
//
// Speaks the mwc.svc.v1/v2 JSONL wire protocol (one request per line, one
// response per line, matched by id; see docs/SERVICE.md) plus the
// mwc.svc.admin.v1 introspection family ({"admin":"statusz|metrics|
// tracez|config"}, see docs/OBSERVABILITY.md) on the same transport.
// Two transports:
//
//   * stdin/stdout (default): reads requests until EOF or SIGINT/SIGTERM,
//     then drains all accepted work and exits — the mode mwc_loadgen and
//     the CI smoke job drive through a pipe;
//   * TCP (--port N): a single non-blocking epoll event loop
//     (svc::NetServer) serves every connection on 127.0.0.1:N — clients
//     may pipeline requests back-to-back on one socket and always get
//     responses in request order; SIGINT/SIGTERM deterministically stops
//     the loop, flushes every response owed, and drains.
//
// Both transports write the --metrics-out / --trace-out sidecars on
// *every* graceful exit path, signals included (stdio uses a self-pipe so
// a Ctrl-C'd run doesn't lose its metrics). With --cache-snapshot the
// daemon reloads its PlanCache from PATH at startup (ignoring a missing
// or invalid file) and rewrites PATH after draining, so a restarted
// daemon answers repeat requests warm.
//
// Flags:
//   --queue-depth N          max in-flight requests before queue_full (64)
//   --threads N              solver worker threads (0 = hardware)
//   --cache-capacity N       PlanCache capacity in plans; 0 disables (128)
//   --cache-shards N         PlanCache shard count (8)
//   --cache-snapshot FILE    load the plan cache from FILE at start and
//                            save it back after draining
//   --port N                 serve TCP on 127.0.0.1:N instead of stdio
//   --sessions               enable mwc.svc.stream.v1 streaming sessions
//                            (TCP only; stdio rejects stream frames with
//                            the structured sessions_disabled error)
//   --max-sessions N         live session cap across connections (64)
//   --session-gamma G        EWMA weight of new rate observations (0.3)
//   --session-margin M       deadline-trigger hysteresis fraction (0.1)
//   --session-speed V        charger speed, field units / cycle unit (1000)
//   --session-charge-time S  per-visit charge time in cycle units (0)
//   --session-interval S     min cycle-time between replans/session (0)
//   --idle-timeout-ms MS     close TCP connections idle for MS (0 = never)
//   --drain-timeout-ms MS    on shutdown, force-close connections whose
//                            output cannot flush after MS (5000; 0 = wait)
//   --max-conns N            concurrent TCP connection cap (1024)
//   --metrics-out FILE       write the global obs registry (mwc.metrics.v1
//                            JSON) after draining
//   --trace-out FILE         enable span collection, write a Chrome trace
//   --access-log FILE        append one JSONL line per completed request
//   --access-log-slow-ms MS  only log requests slower than MS (0 = all)
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include <poll.h>
#include <unistd.h>

#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "svc/access_log.hpp"
#include "svc/admin.hpp"
#include "svc/event_loop.hpp"
#include "svc/json.hpp"
#include "svc/server.hpp"
#include "svc/session.hpp"
#include "svc/snapshot.hpp"
#include "svc/wire.hpp"
#include "util/cli.hpp"

namespace {

using mwc::svc::AdminHandler;
using mwc::svc::NetServer;
using mwc::svc::NetServerOptions;
using mwc::svc::NetStats;
using mwc::svc::Response;
using mwc::svc::Server;
using mwc::svc::SessionManager;
using mwc::svc::SessionOptions;
using mwc::svc::StreamStats;

/// Serializes responses onto one stream; callbacks fire from any worker.
class LineSink {
 public:
  explicit LineSink(std::FILE* out) : out_(out) {}

  void write(const Response& response) {
    write_line(mwc::svc::to_jsonl(response));
  }

  /// Raw pre-serialized JSONL line (admin responses).
  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fflush(out_);
  }

 private:
  std::FILE* out_;
  std::mutex mutex_;
};

/// Dispatches one inbound line: admin requests answer synchronously,
/// everything else goes through the server's admission path.
void dispatch_line(Server& server, const AdminHandler& admin,
                   const std::string& line, LineSink& sink, const char* peer,
                   const std::function<void(const Response&)>& callback) {
  // Streaming sessions need the TCP transport's ordered push path; the
  // stdio transport rejects stream frames with the structured error
  // instead of letting the version string parse as unsupported_version.
  if (mwc::svc::is_stream_frame(line)) {
    sink.write_line(mwc::svc::stream_error_line(
        mwc::svc::stream_frame_id(line),
        mwc::svc::ErrorCode::kSessionsDisabled,
        "streaming sessions require the TCP transport (--port) with "
        "--sessions"));
    return;
  }
  std::string admin_response;
  if (admin.try_handle(line, &admin_response)) {
    sink.write_line(admin_response);
    return;
  }
  server.submit_line(line, callback, peer);
}

// Self-pipe: signal handlers write one byte, the stdio poll loop wakes
// up and begins a graceful drain — so SIGINT/SIGTERM runs still write
// their --metrics-out / --trace-out sidecars (async-signal-safe, unlike
// doing the drain in the handler).
std::atomic<int> g_signal_pipe_w{-1};

void notify_signal_pipe(int) {
  const int fd = g_signal_pipe_w.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

int run_stdio(Server& server, const AdminHandler& admin) {
  LineSink sink(stdout);
  const auto callback = [&sink](const Response& r) { sink.write(r); };

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    std::perror("pipe");
    return 1;
  }
  g_signal_pipe_w.store(pipe_fds[1], std::memory_order_relaxed);
  std::signal(SIGINT, notify_signal_pipe);
  std::signal(SIGTERM, notify_signal_pipe);

  std::string pending;
  char buffer[65536];
  bool signaled = false;
  while (!signaled) {
    pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {pipe_fds[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;  // handler ran before the pipe write
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) {
      signaled = true;  // drain accepted work, skip unread input
      break;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP)) == 0) continue;
    const ssize_t got = ::read(STDIN_FILENO, buffer, sizeof buffer);
    if (got <= 0) break;  // EOF (or read error): drain and exit
    pending.append(buffer, static_cast<std::size_t>(got));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      while (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty())
        dispatch_line(server, admin, line, sink, "stdio", callback);
    }
    pending.erase(0, start);
  }
  // A final unterminated line is still a request (EOF ends it).
  while (!pending.empty() &&
         (pending.back() == '\n' || pending.back() == '\r'))
    pending.pop_back();
  if (!pending.empty() && !signaled)
    dispatch_line(server, admin, pending, sink, "stdio", callback);

  g_signal_pipe_w.store(-1, std::memory_order_relaxed);
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
  server.shutdown();
  return 0;
}

// SIGINT/SIGTERM call NetServer::request_stop (async-signal-safe: an
// atomic flag plus an eventfd write) — the loop flushes owed responses,
// closes every connection, and returns. No thread ever blocks in read()
// past the signal.
std::atomic<NetServer*> g_net_server{nullptr};

void stop_net_server(int) {
  NetServer* net = g_net_server.load(std::memory_order_relaxed);
  if (net != nullptr) net->request_stop();
}

int run_tcp(Server& server, const AdminHandler& admin,
            NetServerOptions options,
            const std::shared_ptr<std::atomic<NetServer*>>& statusz_handle,
            mwc::svc::StreamHub* sessions) {
  NetServer net(server, &admin, std::move(options), sessions);
  if (!net.start()) return 1;
  statusz_handle->store(&net);
  g_net_server.store(&net);
  std::signal(SIGINT, stop_net_server);
  std::signal(SIGTERM, stop_net_server);
  std::fprintf(stderr, "mwcd: listening on 127.0.0.1:%d (epoll)\n",
               net.port());
  net.run();
  g_net_server.store(nullptr);
  statusz_handle->store(nullptr);
  server.shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  mwc::CliArgs args(argc, argv);
  const double start_us = mwc::obs::now_us();

  mwc::svc::ServerOptions options;
  options.queue_capacity =
      static_cast<std::size_t>(args.get_int_or("queue-depth", 64));
  options.threads = static_cast<std::size_t>(args.get_int_or("threads", 0));
  options.cache_capacity =
      static_cast<std::size_t>(args.get_int_or("cache-capacity", 128));
  options.cache_shards =
      static_cast<std::size_t>(args.get_int_or("cache-shards", 8));
  const std::string metrics_path = args.get_or("metrics-out", "");
  const std::string trace_path = args.get_or("trace-out", "");
  const std::string access_log_path = args.get_or("access-log", "");
  const double access_log_slow_ms =
      args.get_double_or("access-log-slow-ms", 0.0);
  const std::string snapshot_path = args.get_or("cache-snapshot", "");
  const int port = static_cast<int>(args.get_int_or("port", 0));
  NetServerOptions net_options;
  net_options.port = port;
  net_options.idle_timeout_ms = args.get_double_or("idle-timeout-ms", 0.0);
  net_options.drain_timeout_ms =
      args.get_double_or("drain-timeout-ms", 5000.0);
  net_options.max_connections =
      static_cast<std::size_t>(args.get_int_or("max-conns", 1024));
  const bool sessions_enabled = args.get_bool_or("sessions", false);
  SessionOptions session_options;
  session_options.max_sessions =
      static_cast<std::size_t>(args.get_int_or("max-sessions", 64));
  session_options.gamma = args.get_double_or("session-gamma", 0.3);
  session_options.margin = args.get_double_or("session-margin", 0.1);
  session_options.travel_speed =
      args.get_double_or("session-speed", 1000.0);
  session_options.charge_time =
      args.get_double_or("session-charge-time", 0.0);
  session_options.min_replan_interval =
      args.get_double_or("session-interval", 0.0);
  if (sessions_enabled && port <= 0)
    std::fprintf(stderr,
                 "mwcd: --sessions requires --port; stream frames on "
                 "stdio are rejected\n");
  if (!trace_path.empty()) mwc::obs::set_trace_enabled(true);

  std::unique_ptr<mwc::svc::AccessLog> access_log;
  if (!access_log_path.empty()) {
    access_log = std::make_unique<mwc::svc::AccessLog>(access_log_path,
                                                       access_log_slow_ms);
    if (!access_log->ok()) {
      std::fprintf(stderr, "mwcd: cannot open access log %s\n",
                   access_log_path.c_str());
      return 1;
    }
    options.access_log = access_log.get();
  }

  int rc;
  {
    Server server(options);
    // Declared after `server` so it is destroyed first (its destructor
    // drains the server, so no replan callback outlives the session
    // table); run_tcp's NetServer dies before either.
    std::unique_ptr<SessionManager> sessions;
    if (sessions_enabled && port > 0)
      sessions = std::make_unique<SessionManager>(server, session_options);

    if (!snapshot_path.empty() && options.cache_capacity > 0) {
      std::string error;
      const std::size_t restored =
          mwc::svc::load_cache_snapshot(server.cache(), snapshot_path,
                                        &error);
      if (!error.empty())
        std::fprintf(stderr, "mwcd: cache snapshot %s rejected: %s\n",
                     snapshot_path.c_str(), error.c_str());
      else if (restored > 0)
        std::fprintf(stderr, "mwcd: cache snapshot: restored %zu plans\n",
                     restored);
    }

    // statusz_extra must be wired before AdminHandler copies AdminInfo,
    // but the NetServer only exists inside run_tcp — bridge with an
    // atomic handle the hook dereferences at call time.
    auto net_handle = std::make_shared<std::atomic<NetServer*>>(nullptr);
    SessionManager* const sessions_ptr = sessions.get();
    mwc::svc::AdminInfo info;
    info.build = std::string("mwcd libmwc/1.0.0 (obs ") +
                 (MWC_OBS_ENABLED != 0 ? "on" : "off") + ")";
    info.transport = port > 0 ? "tcp" : "stdio";
    info.start_us = start_us;
    info.metrics_out = metrics_path;
    info.trace_out = trace_path;
    info.statusz_extra = [net_handle, sessions_ptr](mwc::svc::Json& s) {
      NetServer* net = net_handle->load(std::memory_order_acquire);
      if (net == nullptr) return;
      const NetStats st = net->stats();
      mwc::svc::Json n = mwc::svc::Json::object();
      n.set("connections", mwc::svc::Json(st.connections));
      n.set("accepted", mwc::svc::Json(st.accepted));
      n.set("closed", mwc::svc::Json(st.closed));
      n.set("requests", mwc::svc::Json(st.requests));
      n.set("responses", mwc::svc::Json(st.responses));
      n.set("bytes_read", mwc::svc::Json(st.bytes_read));
      n.set("bytes_written", mwc::svc::Json(st.bytes_written));
      n.set("wakeups", mwc::svc::Json(st.wakeups));
      n.set("idle_closed", mwc::svc::Json(st.idle_closed));
      n.set("overflow_closed", mwc::svc::Json(st.overflow_closed));
      n.set("drain_dropped", mwc::svc::Json(st.drain_dropped));
      n.set("pushes", mwc::svc::Json(st.pushes));
      n.set("pushes_dropped", mwc::svc::Json(st.pushes_dropped));
      s.set("net", std::move(n));
      SessionManager* hub = sessions_ptr;
      if (hub == nullptr) return;
      const StreamStats ss = hub->stats();
      mwc::svc::Json j = mwc::svc::Json::object();
      j.set("active", mwc::svc::Json(ss.active));
      j.set("opened", mwc::svc::Json(ss.opened));
      j.set("closed", mwc::svc::Json(ss.closed));
      j.set("observes", mwc::svc::Json(ss.observes));
      j.set("rejected", mwc::svc::Json(ss.rejected));
      j.set("replans", mwc::svc::Json(ss.replans));
      j.set("replan_failures", mwc::svc::Json(ss.replan_failures));
      j.set("pushes", mwc::svc::Json(ss.pushes));
      j.set("at_risk", mwc::svc::Json(ss.at_risk));
      j.set("deaths", mwc::svc::Json(ss.deaths));
      j.set("last_replan_ms", mwc::svc::Json(ss.last_replan_ms));
      s.set("sessions", std::move(j));
    };
    AdminHandler admin(server, info);
    rc = port > 0 ? run_tcp(server, admin, net_options, net_handle,
                            sessions.get())
                  : run_stdio(server, admin);

    // Snapshot after the drain (cache fully settled) but while the
    // server is alive; sidecars below then record the save counters.
    if (!snapshot_path.empty() && options.cache_capacity > 0) {
      const long written =
          mwc::svc::save_cache_snapshot(server.cache(), snapshot_path);
      if (written < 0) {
        std::fprintf(stderr, "mwcd: cannot write cache snapshot %s\n",
                     snapshot_path.c_str());
        rc = rc == 0 ? 1 : rc;
      }
    }
  }

  // The log is asynchronous; tear it down before the sidecars so that
  // once metrics.json exists, every access-log line is on disk too.
  access_log.reset();

  if (!metrics_path.empty() &&
      !mwc::obs::Registry::global().write_json(metrics_path)) {
    std::fprintf(stderr, "mwcd: cannot write %s\n", metrics_path.c_str());
    rc = rc == 0 ? 1 : rc;
  }
  if (!trace_path.empty() && !mwc::obs::write_chrome_trace(trace_path)) {
    std::fprintf(stderr, "mwcd: cannot write %s\n", trace_path.c_str());
    rc = rc == 0 ? 1 : rc;
  }
  return rc;
}
