// mwc_loadgen — load-generator client for mwcd.
//
// Spawns an mwcd child over a stdin/stdout pipe (default) or connects to
// one or more running daemons (--connect host:port[,host:port...]),
// drives a request mix through the mwc.svc.v1 wire protocol, and reports
// throughput plus latency percentiles (p50/p95/p99 estimated from an
// obs::Histogram of client-observed round-trip times).
//
// With several endpoints, requests route by consistent hashing on the
// instance topology seed (64 virtual nodes per endpoint), so repeats of
// an instance always land on the same daemon and its PlanCache stays
// warm — a fleet of mwcd processes behaves like one sharded cache.
// --pipeline D writes up to D requests back-to-back per endpoint in a
// single write() (JSONL pipelining against mwcd's epoll transport; TCP
// sockets get TCP_NODELAY so bursts are not serialized by Nagle).
//
// Flags:
//   --server PATH     mwcd binary to spawn (default: mwcd next to this
//                     binary); child gets --queue-depth/--threads/
//                     --cache-capacity forwarded
//   --connect HOST:PORT[,HOST:PORT...]
//                     use running daemons instead of spawning; more than
//                     one endpoint enables consistent-hash routing
//   --count N         total requests (default 64)
//   --concurrency C   closed loop: max outstanding requests (default 4)
//   --pipeline D      batch up to D requests per endpoint into one write
//                     (default 1; raises the closed-loop window to at
//                     least D)
//   --rate R          open loop: send R req/s regardless of completions
//                     (0 = closed loop)
//   --warmup K        send K untimed priming requests (same instance mix)
//                     and await them before the measured run (default 0)
//   --mode M          warm | cold | mixed (default mixed): warm repeats
//                     one instance (all but the first hit the PlanCache),
//                     cold gives every request a fresh topology seed,
//                     mixed cycles --distinct instances (default 8)
//   --delta           v2 delta mode: solve one base instance, then drive
//                     --count move_sensor patches against its fingerprint
//                     through the mwc.svc.v2 delta form
//   --n, --q          instance size (default 200 sensors, 5 chargers)
//   --policy NAME     exp::PolicyRegistry name (default MinTotalDistance)
//   --horizon T       monitoring period (default 1000)
//   --deadline-ms D   per-request deadline (0 = none)
//   --seed S          base topology seed (default 1)
//   --queue-depth N   forwarded to the spawned child (default 64)
//   --threads N       forwarded to the spawned child
//   --cache-capacity N forwarded to the spawned child
//   --metrics-out F   forwarded to the spawned child
//   --trace-id-prefix P  stamp request trace_ids as "P-<id>"; the server
//                     echoes them plus a per-stage timing breakdown
//                     ("t": parse/queue/cache/solve ms), which feeds the
//                     stage-latency table printed after the run
//   --json FILE       write the report as JSON
//
// Streaming-session mode (mwc.svc.stream.v1; requires --connect against
// an mwcd started with --port and --sessions):
//   --stream          drive one streaming session instead of the request
//                     mix: solve a calm base plan, open a session on its
//                     fingerprint, stream per-sensor discharge rates as
//                     observe frames, and capture server-pushed replans
//   --surge           storm workload: a regional StormCycleProcess storm
//                     cell is held active from --surge-at onwards, so a
//                     correlated sensor cluster drains --storm-stress x
//                     faster than the plan assumed. After the run both
//                     arms — the static base plan and the actual pushed
//                     plan sequence — replay the identical discharge
//                     trajectory client-side; the summary table reports
//                     sensors saved by replanning plus replan and
//                     push-to-apply latency percentiles
//   --steps K --step-dt D   K observe frames, one per D session time
//                     units (defaults 16 x 1.0)
//   --surge-at K      step at which the storm arrives (default 10)
//   --tau-min/--tau-max     calm cycle range of the storm process
//                     (defaults 10 / 50; linear in distance to base)
//   --storm-stress F  storm consumption multiplier (default 4)
//   --storm-radius R  storm cell radius in metres (default 300)
#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/registry.hpp"
#include "svc/json.hpp"
#include "svc/session.hpp"
#include "svc/wire.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "wsn/deployment.hpp"
#include "wsn/storm.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Transport {
  int write_fd = -1;
  int read_fd = -1;
  pid_t child = -1;

  void close_write() {
    if (write_fd >= 0) {
      // TCP transport: read_fd is a dup of the same socket, so close()
      // alone would not half-close the connection and the daemon would
      // never see EOF. shutdown() is a no-op error (ENOTSOCK) on the
      // spawned-child pipe.
      ::shutdown(write_fd, SHUT_WR);
      ::close(write_fd);
    }
    write_fd = -1;
  }

  ~Transport() {
    close_write();
    if (read_fd >= 0) ::close(read_fd);
    if (child > 0) ::waitpid(child, nullptr, 0);
  }
};

bool spawn_child(Transport& t, const std::vector<std::string>& argv_strs) {
  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) < 0 || ::pipe(from_child) < 0) {
    std::perror("pipe");
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> argv;
    argv.reserve(argv_strs.size() + 1);
    for (const auto& s : argv_strs)
      argv.push_back(const_cast<char*>(s.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("execv");
    std::_Exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  t.write_fd = to_child[1];
  t.read_fd = from_child[0];
  t.child = pid;
  return true;
}

bool connect_tcp(Transport& t, const std::string& hostport) {
  const auto colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect wants HOST:PORT\n");
    return false;
  }
  const std::string host = hostport.substr(0, colon);
  const std::string port = hostport.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &info) != 0 ||
      info == nullptr) {
    std::fprintf(stderr, "cannot resolve %s\n", hostport.c_str());
    return false;
  }
  const int fd = ::socket(info->ai_family, info->ai_socktype, 0);
  const bool ok =
      fd >= 0 && ::connect(fd, info->ai_addr, info->ai_addrlen) == 0;
  ::freeaddrinfo(info);
  if (!ok) {
    std::perror("connect");
    if (fd >= 0) ::close(fd);
    return false;
  }
  // Pipelined bursts must not sit in Nagle / delayed-ACK limbo.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  t.write_fd = fd;
  t.read_fd = ::dup(fd);
  return true;
}

struct Tally {
  std::mutex mutex;
  std::map<std::string, Clock::time_point> sent;  ///< id -> send time
  std::set<std::string> warmup;  ///< priming ids, excluded from stats
  std::size_t ok = 0;
  std::size_t cached = 0;
  std::size_t derived = 0;
  std::size_t errors = 0;
  std::map<std::string, std::size_t> errors_by_code;
  std::string fingerprint;  ///< latest plan fingerprint (delta base)
};

/// Server-side stage names, in pipeline order, matching the keys of the
/// "t" timing echo on traced responses.
constexpr std::array<const char*, 4> kStageKeys = {
    "parse_ms", "queue_ms", "cache_ms", "solve_ms"};

/// A server-pushed plan frame captured off the wire (stream mode).
struct StreamPush {
  double t = 0.0;          ///< session time the replan applied (epoch)
  double replan_ms = 0.0;  ///< server-reported trigger->plan latency
  double apply_ms = 0.0;   ///< client trigger-send -> push-received
  mwc::svc::Plan plan;     ///< first_round_tours only
};

/// Client-side state of the one streaming session (stream mode). Stream
/// frames never enter the Tally: plan pushes carry no request id, and the
/// session handshake is paced on `acked`, not on the latency histogram.
struct StreamState {
  std::mutex mutex;
  std::set<std::string> acked;       ///< frame ids answered ok
  std::uint64_t session = 0;         ///< id from the open ack
  std::size_t round_sensors = 0;     ///< open ack round size
  std::size_t observes = 0;          ///< observe acks seen
  std::size_t at_risk_total = 0;     ///< sum of ack at_risk counts
  std::size_t server_dead = 0;       ///< latest ack dead count
  std::vector<StreamPush> pushes;
  mwc::svc::Plan base_plan;          ///< tours of the calm base solve
  bool have_base = false;
  Clock::time_point last_send;       ///< most recent observe write
  bool failed = false;
  std::string error;
};

/// One client-side replay arm: drains every sensor along the observed
/// rate trajectory, crediting visits from the active plan's first-round
/// tours. A pushed plan replaces the whole visit schedule from its epoch
/// on, exactly like the server monitor's refresh_deadlines, so the two
/// arms differ only in which plans were available. step_rates[k] is the
/// rate vector reported at t = (k+1) * step_dt and drains the interval
/// ((k) * step_dt, (k+1) * step_dt] — the server's integration rule.
/// Returns the number of sensors whose residual ever reached zero.
std::size_t replay_deaths(const mwc::wsn::Network& network,
                          const std::vector<std::vector<double>>& step_rates,
                          double step_dt,
                          const std::vector<StreamPush>& plan_events,
                          double travel_speed, double charge_time) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = network.n();
  std::vector<double> battery(n), residual(n), visit(n, kInf);
  for (std::size_t i = 0; i < n; ++i)
    battery[i] = residual[i] = network.sensor(i).battery_capacity;
  std::vector<char> dead(n, 0);
  std::size_t next_event = 0;
  const auto apply = [&](const StreamPush& event) {
    const std::vector<double> times = mwc::svc::plan_visit_times(
        event.plan, network, travel_speed, charge_time);
    for (std::size_t i = 0; i < n; ++i)
      visit[i] = std::isfinite(times[i]) ? event.t + times[i] : kInf;
  };
  while (next_event < plan_events.size() &&
         plan_events[next_event].t <= 0.0)
    apply(plan_events[next_event++]);
  for (std::size_t k = 0; k < step_rates.size(); ++k) {
    const double t_prev = step_dt * static_cast<double>(k);
    const double t = step_dt * static_cast<double>(k + 1);
    const std::vector<double>& rates = step_rates[k];
    for (std::size_t i = 0; i < n; ++i) {
      if (visit[i] > t_prev && visit[i] <= t) {
        // Did the drain catch the sensor before the charger did?
        if (residual[i] - rates[i] * (visit[i] - t_prev) <= 0.0) dead[i] = 1;
        residual[i] = battery[i] - rates[i] * (t - visit[i]);
        visit[i] = kInf;
      } else {
        residual[i] -= rates[i] * (t - t_prev);
      }
      if (residual[i] <= 0.0) {
        residual[i] = 0.0;
        dead[i] = 1;
      }
    }
    while (next_event < plan_events.size() && plan_events[next_event].t <= t)
      apply(plan_events[next_event++]);
  }
  std::size_t deaths = 0;
  for (const char d : dead) deaths += static_cast<std::size_t>(d);
  return deaths;
}

double quantile_of(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

/// Rebuilds the tour list of a pushed plan frame ("plan" object, same
/// shape to_jsonl emits) far enough for plan_visit_times.
mwc::svc::Plan parse_pushed_plan(const mwc::svc::Json& doc) {
  mwc::svc::Plan plan;
  for (const auto& tour_doc : doc.at("first_round_tours").items()) {
    mwc::svc::PlanTour tour;
    tour.depot = static_cast<std::size_t>(tour_doc.at("depot").as_int());
    for (const auto& id : tour_doc.at("sensors").items())
      tour.sensors.push_back(static_cast<std::size_t>(id.as_int()));
    tour.length = tour_doc.at("length").as_double();
    plan.first_round_tours.push_back(std::move(tour));
  }
  return plan;
}

/// Absorbs one mwc.svc.stream.v1 line into the stream state. Returns
/// false only on a malformed frame (caller counts it as an error).
bool on_stream_line(const mwc::svc::Json& doc, StreamState& stream,
                    Clock::time_point now) {
  try {
    std::lock_guard<std::mutex> lock(stream.mutex);
    const mwc::svc::Json* op = doc.find("op");
    const std::string opname =
        op != nullptr && op->is_string() ? op->as_string() : std::string();
    if (opname == "plan") {
      StreamPush push;
      push.t = doc.at("t").as_double();
      push.replan_ms = doc.at("replan_ms").as_double();
      push.apply_ms =
          std::chrono::duration<double, std::milli>(now - stream.last_send)
              .count();
      push.plan = parse_pushed_plan(doc.at("plan"));
      stream.pushes.push_back(std::move(push));
      return true;
    }
    if (!doc.at("ok").as_bool()) {
      stream.failed = true;
      stream.error = doc.at("error").as_string();
      if (const auto* message = doc.find("message"))
        stream.error += ": " + message->as_string();
      return true;
    }
    if (opname == "open") {
      stream.session = static_cast<std::uint64_t>(doc.at("session").as_int());
      stream.round_sensors =
          static_cast<std::size_t>(doc.at("round_sensors").as_int());
    } else if (opname == "observe") {
      ++stream.observes;
      stream.at_risk_total +=
          static_cast<std::size_t>(doc.at("at_risk").as_int());
      stream.server_dead = static_cast<std::size_t>(doc.at("dead").as_int());
    }
    if (const auto* id = doc.find("id")) stream.acked.insert(id->as_string());
    return true;
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(stream.mutex);
    stream.failed = true;
    stream.error = e.what();
    return false;
  }
}

void reader_loop(int fd, Tally& tally, mwc::obs::Histogram& latency,
                 const std::array<mwc::obs::Histogram*, 4>& stages,
                 StreamState* stream) {
  std::FILE* in = ::fdopen(fd, "r");
  if (in == nullptr) return;
  char* buffer = nullptr;
  std::size_t buffer_size = 0;
  ssize_t got;
  while ((got = ::getline(&buffer, &buffer_size, in)) > 0) {
    const auto now = Clock::now();
    std::string line(buffer, static_cast<std::size_t>(got));
    try {
      const mwc::svc::Json doc = mwc::svc::Json::parse(line);
      // Stream-session frames (including unsolicited plan pushes, which
      // carry no request id) route to the session state, not the tally.
      if (stream != nullptr) {
        if (const auto* v = doc.find("v");
            v != nullptr && v->is_string() &&
            v->as_string() == mwc::svc::kWireVersionStream) {
          on_stream_line(doc, *stream, now);
          continue;
        }
      }
      const std::string id = doc.at("id").as_string();
      std::lock_guard<std::mutex> lock(tally.mutex);
      if (const auto w = tally.warmup.find(id); w != tally.warmup.end()) {
        tally.warmup.erase(w);  // priming response: completion only
        continue;
      }
      const auto it = tally.sent.find(id);
      if (it != tally.sent.end()) {
        latency.observe(
            std::chrono::duration<double, std::milli>(now - it->second)
                .count());
        tally.sent.erase(it);
      }
      if (doc.at("ok").as_bool()) {
        ++tally.ok;
        if (const auto* cached = doc.find("cached");
            cached != nullptr && cached->as_bool())
          ++tally.cached;
        if (const auto* derived = doc.find("derived");
            derived != nullptr && derived->as_bool())
          ++tally.derived;
        if (const auto* plan = doc.find("plan")) {
          tally.fingerprint = plan->at("fingerprint").as_string();
          if (stream != nullptr) {
            // Stream mode needs the calm base tours for the replay arms.
            auto parsed = parse_pushed_plan(*plan);
            std::lock_guard<std::mutex> stream_lock(stream->mutex);
            stream->base_plan = std::move(parsed);
            stream->have_base = true;
          }
        }
      } else {
        ++tally.errors;
        ++tally.errors_by_code[doc.at("error").as_string()];
      }
      // Traced responses (and all v2 responses) echo the server-side
      // stage breakdown; errors carry one too.
      if (const auto* t = doc.find("t")) {
        for (std::size_t k = 0; k < kStageKeys.size(); ++k) {
          if (const auto* v = t->find(kStageKeys[k]))
            stages[k]->observe(v->as_double());
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad response line: %s\n", e.what());
      std::lock_guard<std::mutex> lock(tally.mutex);
      ++tally.errors;
    }
  }
  std::free(buffer);
  // fd was handed to the FILE*; closing it here, Transport skips it.
  std::fclose(in);
}

std::string dirname_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One connected daemon plus its pending pipelined batch.
struct Endpoint {
  Transport transport;
  std::string label;
  std::string batch;               ///< concatenated unsent lines
  std::vector<std::string> batch_ids;
  std::size_t routed = 0;          ///< requests routed here (report)
};

/// Consistent-hash ring over endpoints: 64 virtual nodes each, keyed by
/// the mixed instance seed. One endpoint short-circuits.
class Router {
 public:
  explicit Router(const std::vector<std::unique_ptr<Endpoint>>& endpoints) {
    for (std::size_t i = 0; i < endpoints.size(); ++i)
      for (int v = 0; v < 64; ++v)
        ring_.emplace(fnv1a(endpoints[i]->label + "#" + std::to_string(v)),
                      i);
    single_ = endpoints.size() <= 1;
  }

  std::size_t pick(std::uint64_t key) const {
    if (single_ || ring_.empty()) return 0;
    auto it = ring_.lower_bound(mix64(key));
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
  }

 private:
  std::map<std::uint64_t, std::size_t> ring_;
  bool single_ = true;
};

}  // namespace

int main(int argc, char** argv) {
  mwc::CliArgs args(argc, argv);

  const std::size_t count =
      static_cast<std::size_t>(args.get_int_or("count", 64));
  const std::size_t concurrency =
      static_cast<std::size_t>(args.get_int_or("concurrency", 4));
  const std::size_t pipeline = static_cast<std::size_t>(
      std::max<long long>(1, args.get_int_or("pipeline", 1)));
  const std::size_t warmup =
      static_cast<std::size_t>(args.get_int_or("warmup", 0));
  const double rate = args.get_double_or("rate", 0.0);
  const std::string mode = args.get_or("mode", "mixed");
  const std::size_t distinct = static_cast<std::size_t>(
      args.get_int_or("distinct", mode == "warm" ? 1 : 8));
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  if (mode != "warm" && mode != "cold" && mode != "mixed") {
    std::fprintf(stderr, "--mode must be warm, cold, or mixed\n");
    return 2;
  }

  // Request template (all requests flow through the typed builders).
  const bool delta_mode = args.get_bool_or("delta", false);
  const bool stream_mode = args.get_bool_or("stream", false);
  if (stream_mode && delta_mode) {
    std::fprintf(stderr, "--stream and --delta are exclusive\n");
    return 2;
  }
  const std::string policy = args.get_or("policy", "MinTotalDistance");
  const std::size_t n = static_cast<std::size_t>(args.get_int_or("n", 200));
  const std::size_t q = static_cast<std::size_t>(args.get_int_or("q", 5));
  const double field_side = args.get_double_or("field", 1000.0);
  const double horizon = args.get_double_or("horizon", 1000.0);
  const double deadline_ms = args.get_double_or("deadline-ms", 0.0);
  const std::string trace_prefix = args.get_or("trace-id-prefix", "");
  const auto trace_for = [&](const std::string& id) {
    return trace_prefix.empty() ? std::string() : trace_prefix + "-" + id;
  };
  const auto full_request = [&](const std::string& id,
                                std::uint64_t topology_seed) {
    mwc::svc::RequestBuilder builder(id);
    builder.policy(policy)
        .preset(n, q, field_side, topology_seed)
        .cycle_model({}, base_seed)
        .horizon(horizon)
        .deadline_ms(deadline_ms);
    if (!trace_prefix.empty()) builder.trace_id(trace_for(id));
    return builder.to_json_line();
  };
  const auto instance_for = [&](std::size_t i) -> std::uint64_t {
    return mode == "cold" ? i : (mode == "warm" ? 0 : i % distinct);
  };

  std::vector<std::unique_ptr<Endpoint>> endpoints;
  const std::string connect = args.get_or("connect", "");
  if (!connect.empty()) {
    std::size_t start_pos = 0;
    for (;;) {
      const std::size_t comma = connect.find(',', start_pos);
      const std::string hostport =
          connect.substr(start_pos, comma == std::string::npos
                                        ? std::string::npos
                                        : comma - start_pos);
      if (!hostport.empty()) {
        auto ep = std::make_unique<Endpoint>();
        ep->label = hostport;
        if (!connect_tcp(ep->transport, hostport)) return 1;
        endpoints.push_back(std::move(ep));
      }
      if (comma == std::string::npos) break;
      start_pos = comma + 1;
    }
    if (endpoints.empty()) {
      std::fprintf(stderr, "--connect wants HOST:PORT[,HOST:PORT...]\n");
      return 1;
    }
  } else {
    const std::string server =
        args.get_or("server", dirname_of(args.program()) + "/mwcd");
    std::vector<std::string> child_argv{server};
    for (const char* flag :
         {"queue-depth", "threads", "cache-capacity", "cache-shards",
          "cache-snapshot", "metrics-out", "trace-out"}) {
      if (const auto v = args.get(flag))
        child_argv.push_back("--" + std::string(flag) + "=" + *v);
    }
    auto ep = std::make_unique<Endpoint>();
    ep->label = "child";
    if (!spawn_child(ep->transport, child_argv)) return 1;
    endpoints.push_back(std::move(ep));
  }
  const Router router(endpoints);

  Tally tally;
  mwc::obs::Registry local;
  const std::vector<double> latency_buckets{
      0.05, 0.1,  0.25,  0.5,   1.0,    2.5,    5.0,    10.0,   25.0,
      50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
  mwc::obs::Histogram& latency =
      local.histogram("loadgen.latency_ms", latency_buckets);
  // Server-side stage breakdown, fed from the "t" echo on responses that
  // carry a trace id (--trace-id-prefix, or any v2 delta response).
  std::array<mwc::obs::Histogram*, 4> stage_hists{};
  for (std::size_t k = 0; k < kStageKeys.size(); ++k) {
    stage_hists[k] = &local.histogram(
        std::string("loadgen.stage.") + kStageKeys[k], latency_buckets);
  }
  StreamState stream_state;
  StreamState* const stream_ptr = stream_mode ? &stream_state : nullptr;
  std::vector<std::thread> readers;
  readers.reserve(endpoints.size());
  for (auto& ep : endpoints) {
    Endpoint* e = ep.get();
    readers.emplace_back([e, &tally, &latency, &stage_hists, stream_ptr] {
      reader_loop(e->transport.read_fd, tally, latency, stage_hists,
                  stream_ptr);
      e->transport.read_fd = -1;  // reader closed it
    });
  }

  const auto outstanding = [&tally] {
    std::lock_guard<std::mutex> lock(tally.mutex);
    return tally.sent.size();
  };
  const auto write_all = [](int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t put = ::write(fd, data.data() + off, data.size() - off);
      if (put < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(put);
    }
    return true;
  };
  std::size_t buffered = 0;  // requests batched but not yet written
  // Stamps every batched id "sent now" and pushes the whole batch in one
  // write(): DEPTH pipelined requests reach the daemon back-to-back.
  const auto flush_endpoint = [&](Endpoint& ep) {
    if (ep.batch.empty()) return true;
    {
      std::lock_guard<std::mutex> lock(tally.mutex);
      const auto now = Clock::now();
      for (auto& id : ep.batch_ids) tally.sent.emplace(std::move(id), now);
    }
    buffered -= ep.batch_ids.size();
    ep.batch_ids.clear();
    std::string data = std::move(ep.batch);
    ep.batch.clear();
    if (!write_all(ep.transport.write_fd, data)) {
      std::fprintf(stderr, "short write to server: %s\n",
                   std::strerror(errno));
      return false;
    }
    return true;
  };

  // ---- Streaming-session mode -------------------------------------
  // One session, one connection: solve a calm base plan, open a stream
  // on its fingerprint, feed observed discharge rates (with a regional
  // storm held active from --surge-at on), collect the server's pushed
  // replans, and replay both arms client-side.
  if (stream_mode) {
    if (connect.empty() || endpoints.size() != 1) {
      std::fprintf(stderr,
                   "--stream requires --connect with exactly one endpoint "
                   "(an mwcd started with --port and --sessions)\n");
      return 2;
    }
    const bool surge = args.get_bool_or("surge", false);
    const std::size_t steps =
        static_cast<std::size_t>(args.get_int_or("steps", 16));
    const double step_dt = args.get_double_or("step-dt", 1.0);
    const std::size_t surge_at =
        static_cast<std::size_t>(args.get_int_or("surge-at", 10));
    const double travel_speed = args.get_double_or("speed", 1000.0);
    mwc::wsn::StormConfig storm_config;
    storm_config.tau_min = args.get_double_or("tau-min", 10.0);
    storm_config.tau_max = args.get_double_or("tau-max", 50.0);
    storm_config.stress_factor = args.get_double_or("storm-stress", 4.0);
    storm_config.regional = true;
    storm_config.storm_radius = args.get_double_or("storm-radius", 300.0);

    // Local mirror of the server's preset deployment: the engine derives
    // it from Rng(seed, 0), so client and server agree on every position.
    mwc::wsn::DeploymentConfig deploy;
    deploy.n = n;
    deploy.q = q;
    deploy.field_side = field_side;
    mwc::Rng deploy_rng(base_seed, 0);
    const mwc::wsn::Network network =
        mwc::wsn::deploy_random(deploy, deploy_rng);
    const mwc::wsn::StormCycleProcess storm(network, storm_config,
                                            base_seed);
    // Slot 0 is all-calm by construction: those cycles are the base plan.
    std::vector<double> calm(n);
    for (std::size_t i = 0; i < n; ++i) calm[i] = storm.cycle_at_slot(i, 0);
    // The storm cell the surge holds active: the first slot where one
    // covers a meaningful sensor cluster.
    std::size_t storm_slot = 0;
    if (surge) {
      for (std::size_t s = 1; s < 4096 && storm_slot == 0; ++s)
        if (storm.storm_fraction(s) >= 0.05) storm_slot = s;
      if (storm_slot == 0) {
        std::fprintf(stderr,
                     "no storm slot covers >= 5%% of sensors; try another "
                     "--seed\n");
        return 1;
      }
    }

    Endpoint& ep = *endpoints[0];
    // Solve the calm base plan and learn its fingerprint + tours.
    {
      mwc::svc::RequestBuilder builder("base");
      builder.policy(policy)
          .preset(n, q, field_side, base_seed)
          .cycle_values(calm)
          .horizon(horizon)
          .deadline_ms(deadline_ms);
      if (!trace_prefix.empty()) builder.trace_id(trace_for("base"));
      {
        std::lock_guard<std::mutex> lock(tally.mutex);
        tally.sent.emplace("base", Clock::now());
      }
      if (!write_all(ep.transport.write_fd, builder.to_json_line() + "\n")) {
        std::fprintf(stderr, "short write to server: %s\n",
                     std::strerror(errno));
        return 1;
      }
    }
    std::string base_hex;
    for (int waited = 0; waited < 600 && base_hex.empty(); ++waited) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::lock_guard<std::mutex> lock(tally.mutex);
      base_hex = tally.fingerprint;
    }
    if (base_hex.empty() || tally.errors > 0) {
      std::fprintf(stderr, "base solve never answered; cannot stream\n");
      return 1;
    }

    const auto await_ack = [&](const std::string& id) {
      for (int waited = 0; waited < 2000; ++waited) {
        {
          std::lock_guard<std::mutex> lock(stream_state.mutex);
          if (stream_state.failed) return false;
          if (stream_state.acked.count(id) != 0) return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return false;
    };
    const auto send_frame = [&](const std::string& line) {
      {
        std::lock_guard<std::mutex> lock(stream_state.mutex);
        stream_state.last_send = Clock::now();
      }
      return write_all(ep.transport.write_fd, line);
    };

    // Open the session against the solved base (speed pinned so the
    // server's visit-time model matches the client replay below).
    {
      std::string line = "{\"v\":\"";
      line += mwc::svc::kWireVersionStream;
      line += "\",\"op\":\"open\",\"id\":\"open\",\"base\":\"" + base_hex +
              "\",\"speed\":";
      mwc::svc::append_json_number(line, travel_speed);
      line += ",\"charge_time\":0,\"t\":0}\n";
      if (!send_frame(line) || !await_ack("open")) {
        std::lock_guard<std::mutex> lock(stream_state.mutex);
        std::fprintf(stderr, "session open failed: %s\n",
                     stream_state.error.c_str());
        return 1;
      }
    }
    std::uint64_t session_id;
    {
      std::lock_guard<std::mutex> lock(stream_state.mutex);
      session_id = stream_state.session;
    }

    // Observe loop, paced on acks: rates are the ground truth B_i /
    // tau_i(t) of the storm process — calm until the surge arrives, then
    // the held storm cell's stressed cycles.
    std::vector<std::vector<double>> step_rates;
    step_rates.reserve(steps);
    bool stream_failed = false;
    const auto run_start = Clock::now();
    for (std::size_t k = 1; k <= steps && !stream_failed; ++k) {
      const std::size_t slot =
          surge && k >= surge_at ? storm_slot : std::size_t{0};
      std::vector<double> rates(n);
      for (std::size_t i = 0; i < n; ++i)
        rates[i] =
            network.sensor(i).battery_capacity / storm.cycle_at_slot(i, slot);
      const std::string id = "o" + std::to_string(k);
      std::string line = "{\"v\":\"";
      line += mwc::svc::kWireVersionStream;
      line += "\",\"op\":\"observe\",\"id\":\"" + id + "\",\"session\":";
      mwc::svc::append_json_number(line, static_cast<double>(session_id));
      line += ",\"t\":";
      mwc::svc::append_json_number(line,
                                   step_dt * static_cast<double>(k));
      line += ",\"rates\":[";
      for (std::size_t i = 0; i < n; ++i) {
        if (i > 0) line += ',';
        mwc::svc::append_json_number(line, rates[i]);
      }
      line += "]}\n";
      step_rates.push_back(std::move(rates));
      stream_failed = !send_frame(line) || !await_ack(id);
    }
    // Let a replan triggered by the last observe finish and push.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    {
      std::string line = "{\"v\":\"";
      line += mwc::svc::kWireVersionStream;
      line += "\",\"op\":\"close\",\"id\":\"bye\",\"session\":";
      mwc::svc::append_json_number(line, static_cast<double>(session_id));
      line += "}\n";
      if (!send_frame(line) || !await_ack("bye")) stream_failed = true;
    }
    ep.transport.close_write();
    for (auto& t : readers) t.join();
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - run_start).count();

    // Replay both arms over the identical discharge trajectory.
    std::vector<StreamPush> pushes;
    std::size_t observes, at_risk_total, server_dead;
    {
      std::lock_guard<std::mutex> lock(stream_state.mutex);
      pushes = stream_state.pushes;
      observes = stream_state.observes;
      at_risk_total = stream_state.at_risk_total;
      server_dead = stream_state.server_dead;
      if (stream_state.failed && !stream_state.error.empty())
        std::fprintf(stderr, "stream error: %s\n",
                     stream_state.error.c_str());
      stream_failed = stream_failed || stream_state.failed;
    }
    StreamPush base_event;
    base_event.t = 0.0;
    {
      std::lock_guard<std::mutex> lock(stream_state.mutex);
      base_event.plan = stream_state.base_plan;
    }
    std::vector<StreamPush> static_events{base_event};
    std::vector<StreamPush> streamed_events{base_event};
    streamed_events.insert(streamed_events.end(), pushes.begin(),
                           pushes.end());
    std::stable_sort(streamed_events.begin(), streamed_events.end(),
                     [](const StreamPush& a, const StreamPush& b) {
                       return a.t < b.t;
                     });
    const std::size_t deaths_static = replay_deaths(
        network, step_rates, step_dt, static_events, travel_speed, 0.0);
    const std::size_t deaths_stream = replay_deaths(
        network, step_rates, step_dt, streamed_events, travel_speed, 0.0);
    const long long saved = static_cast<long long>(deaths_static) -
                            static_cast<long long>(deaths_stream);

    std::vector<double> replan_ms, apply_ms;
    for (const StreamPush& push : pushes) {
      replan_ms.push_back(push.replan_ms);
      apply_ms.push_back(push.apply_ms);
    }
    std::size_t storm_sensors = 0;
    if (surge)
      for (std::size_t i = 0; i < n; ++i)
        storm_sensors +=
            static_cast<std::size_t>(storm.storming(i, storm_slot));

    std::printf("mode=stream session=%llu observes=%zu/%zu pushes=%zu "
                "at_risk_flags=%zu server_dead=%zu elapsed %.3f s\n",
                static_cast<unsigned long long>(session_id), observes,
                steps, pushes.size(), at_risk_total, server_dead,
                elapsed_s);
    if (surge) {
      std::printf("surge: storm slot %zu covers %zu/%zu sensors "
                  "(stress x%.1f from t=%.1f)\n",
                  storm_slot, storm_sensors, n,
                  storm_config.stress_factor,
                  step_dt * static_cast<double>(surge_at));
      std::printf("surge summary:          deaths\n");
      std::printf("  static base plan      %6zu\n", deaths_static);
      std::printf("  streamed replans      %6zu\n", deaths_stream);
      std::printf("  sensors saved         %6lld\n", saved);
      std::printf(
          "replan ms (server): p50 %.3f  p95 %.3f   push->apply ms: "
          "p50 %.3f  p95 %.3f\n",
          quantile_of(replan_ms, 0.50), quantile_of(replan_ms, 0.95),
          quantile_of(apply_ms, 0.50), quantile_of(apply_ms, 0.95));
    }

    if (const auto json_path = args.get("json")) {
      mwc::svc::Json doc = mwc::svc::Json::object();
      doc.set("mode", mwc::svc::Json(std::string("stream")));
      doc.set("n", mwc::svc::Json(n));
      doc.set("q", mwc::svc::Json(q));
      doc.set("policy", mwc::svc::Json(policy));
      doc.set("steps", mwc::svc::Json(steps));
      doc.set("step_dt", mwc::svc::Json(step_dt));
      doc.set("observes", mwc::svc::Json(observes));
      doc.set("pushes", mwc::svc::Json(pushes.size()));
      doc.set("at_risk_flags", mwc::svc::Json(at_risk_total));
      doc.set("elapsed_s", mwc::svc::Json(elapsed_s));
      doc.set("replan_ms_p50", mwc::svc::Json(quantile_of(replan_ms, 0.50)));
      doc.set("replan_ms_p95", mwc::svc::Json(quantile_of(replan_ms, 0.95)));
      doc.set("push_apply_ms_p50",
              mwc::svc::Json(quantile_of(apply_ms, 0.50)));
      doc.set("push_apply_ms_p95",
              mwc::svc::Json(quantile_of(apply_ms, 0.95)));
      if (surge) {
        mwc::svc::Json surge_doc = mwc::svc::Json::object();
        surge_doc.set("surge_at", mwc::svc::Json(surge_at));
        surge_doc.set("storm_slot", mwc::svc::Json(storm_slot));
        surge_doc.set("storm_sensors", mwc::svc::Json(storm_sensors));
        surge_doc.set("stress", mwc::svc::Json(storm_config.stress_factor));
        surge_doc.set("deaths_static", mwc::svc::Json(deaths_static));
        surge_doc.set("deaths_stream", mwc::svc::Json(deaths_stream));
        surge_doc.set("sensors_saved",
                      mwc::svc::Json(static_cast<double>(saved)));
        doc.set("surge", std::move(surge_doc));
      }
      std::FILE* f = std::fopen(json_path->c_str(), "w");
      if (f == nullptr) {
        std::perror("fopen --json");
        return 1;
      }
      const std::string text = doc.dump() + "\n";
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
    }
    const bool failed = stream_failed || session_id == 0 ||
                        tally.errors > 0 || (surge && pushes.empty());
    return failed && args.get_bool_or("strict", true) ? 1 : 0;
  }

  // Priming pass: same instance mix and routing as the measured loop,
  // awaited before the clock starts and excluded from every statistic.
  if (warmup > 0 && !delta_mode) {
    for (std::size_t j = 0; j < warmup; ++j) {
      const std::string id = "w" + std::to_string(j);
      const std::uint64_t seed = base_seed + instance_for(j);
      Endpoint& ep = *endpoints[router.pick(seed)];
      {
        std::lock_guard<std::mutex> lock(tally.mutex);
        tally.warmup.insert(id);
      }
      if (!write_all(ep.transport.write_fd, full_request(id, seed) + "\n"))
        return 1;
    }
    for (int waited = 0; waited < 6000; ++waited) {
      {
        std::lock_guard<std::mutex> lock(tally.mutex);
        if (tally.warmup.empty()) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  // Delta mode solves one base instance up front; the patch stream can
  // only be built once the reader has seen its fingerprint.
  std::uint64_t base_fingerprint = 0;
  Endpoint& delta_endpoint = *endpoints[router.pick(base_seed)];
  if (delta_mode) {
    const std::string line = full_request("base", base_seed) + "\n";
    {
      std::lock_guard<std::mutex> lock(tally.mutex);
      tally.sent.emplace("base", Clock::now());
    }
    if (!write_all(delta_endpoint.transport.write_fd, line)) {
      std::fprintf(stderr, "short write to server: %s\n",
                   std::strerror(errno));
      return 1;
    }
    std::string hex;
    for (int waited = 0; waited < 600 && hex.empty(); ++waited) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::lock_guard<std::mutex> lock(tally.mutex);
      hex = tally.fingerprint;
    }
    if (hex.empty()) {
      std::fprintf(stderr, "base solve never answered; cannot send deltas\n");
      return 1;
    }
    base_fingerprint = std::strtoull(hex.c_str(), nullptr, 16);
  }

  // Closed-loop window: at least the pipeline depth, else a deep batch
  // could never fill.
  const std::size_t window = std::max(concurrency, pipeline);
  bool write_failed = false;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < count && !write_failed; ++i) {
    if (rate > 0.0) {
      // Open loop: fixed send schedule, independent of completions.
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(i) / rate));
      // Everything batched so far is already due: release partial
      // batches before sleeping so --pipeline cannot hold paced
      // requests past their slot (batching then only coalesces sends
      // when the sender is behind schedule).
      if (buffered > 0 && Clock::now() < due) {
        for (auto& ep : endpoints)
          if (!flush_endpoint(*ep)) write_failed = true;
        if (write_failed) break;
      }
      std::this_thread::sleep_until(due);
    } else {
      while (!write_failed && outstanding() + buffered >= window) {
        // The window can fill while every per-endpoint batch is still
        // short of the pipeline depth (requests split across daemons);
        // release the partial batches so responses can drain it.
        for (auto& ep : endpoints)
          if (buffered > 0 && !flush_endpoint(*ep)) write_failed = true;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      if (write_failed) break;
    }
    std::string id;
    std::string line;
    std::uint64_t route_key;
    if (delta_mode) {
      // One sensor nudged per request; each distinct patch derives (and
      // caches) a new plan against the same base fingerprint — which
      // lives on exactly one daemon, so deltas route with the base.
      id = "d" + std::to_string(i);
      const double di = static_cast<double>(i);
      mwc::svc::DeltaBuilder builder(id, base_fingerprint);
      builder
          .move_sensor(i % n, {std::fmod(37.0 * di + 11.0, field_side),
                               std::fmod(53.0 * di + 29.0, field_side)})
          .deadline_ms(deadline_ms);
      if (!trace_prefix.empty()) builder.trace_id(trace_for(id));
      line = builder.to_json_line() + "\n";
      route_key = base_seed;
    } else {
      id = "r" + std::to_string(i);
      const std::uint64_t seed = base_seed + instance_for(i);
      line = full_request(id, seed) + "\n";
      route_key = seed;
    }
    Endpoint& ep = *endpoints[router.pick(route_key)];
    ep.batch += line;
    ep.batch_ids.push_back(std::move(id));
    ++ep.routed;
    ++buffered;
    if (ep.batch_ids.size() >= pipeline) write_failed = !flush_endpoint(ep);
  }
  for (auto& ep : endpoints)
    if (!flush_endpoint(*ep)) write_failed = true;
  for (auto& ep : endpoints)
    ep->transport.close_write();  // EOF -> daemon answers and half-closes
  for (auto& t : readers) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  const auto snapshot = local.snapshot();
  const auto& hist = snapshot.histograms.at("loadgen.latency_ms");
  const double p50 = hist.quantile(0.50);
  const double p95 = hist.quantile(0.95);
  const double p99 = hist.quantile(0.99);
  const double mean =
      hist.count > 0 ? hist.sum / static_cast<double>(hist.count) : 0.0;
  const double rps =
      elapsed_s > 0.0 ? static_cast<double>(hist.count) / elapsed_s : 0.0;

  std::printf("mode=%s count=%zu answered=%llu ok=%zu cached=%zu "
              "derived=%zu errors=%zu\n",
              delta_mode ? "delta" : mode.c_str(), count,
              static_cast<unsigned long long>(hist.count), tally.ok,
              tally.cached, tally.derived, tally.errors);
  if (pipeline > 1 || endpoints.size() > 1) {
    std::printf("pipeline=%zu endpoints=%zu routed=[", pipeline,
                endpoints.size());
    for (std::size_t e = 0; e < endpoints.size(); ++e)
      std::printf("%s%zu", e == 0 ? "" : ", ", endpoints[e]->routed);
    std::printf("]\n");
  }
  std::printf("elapsed %.3f s  throughput %.1f req/s\n", elapsed_s, rps);
  std::printf("latency ms: mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  "
              "min %.3f  max %.3f\n",
              mean, p50, p95, p99, hist.min, hist.max);
  for (const auto& [code, n] : tally.errors_by_code)
    std::printf("  error %s: %zu\n", code.c_str(), n);

  // Per-run stage-latency table (server-side breakdown); rows only exist
  // when responses echoed timings.
  bool any_stages = false;
  for (const char* key : kStageKeys) {
    const auto& h = snapshot.histograms.at(std::string("loadgen.stage.") + key);
    if (h.count > 0) any_stages = true;
  }
  if (any_stages) {
    std::printf("server stage ms:   %8s %8s %8s %8s %8s\n", "mean", "p50",
                "p95", "p99", "max");
    for (const char* key : kStageKeys) {
      const auto& h =
          snapshot.histograms.at(std::string("loadgen.stage.") + key);
      const double stage_mean =
          h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
      std::printf("  %-16s %8.3f %8.3f %8.3f %8.3f %8.3f\n", key, stage_mean,
                  h.quantile(0.50), h.quantile(0.95), h.quantile(0.99),
                  h.max);
    }
  }

  if (const auto json_path = args.get("json")) {
    mwc::svc::Json doc = mwc::svc::Json::object();
    doc.set("mode", mwc::svc::Json(delta_mode ? std::string("delta") : mode));
    doc.set("count", mwc::svc::Json(count));
    doc.set("answered", mwc::svc::Json(static_cast<double>(hist.count)));
    doc.set("ok", mwc::svc::Json(tally.ok));
    doc.set("cached", mwc::svc::Json(tally.cached));
    doc.set("derived", mwc::svc::Json(tally.derived));
    doc.set("errors", mwc::svc::Json(tally.errors));
    doc.set("n", mwc::svc::Json(n));
    doc.set("q", mwc::svc::Json(q));
    doc.set("policy", mwc::svc::Json(policy));
    doc.set("concurrency", mwc::svc::Json(concurrency));
    doc.set("pipeline", mwc::svc::Json(pipeline));
    doc.set("warmup", mwc::svc::Json(warmup));
    doc.set("endpoints", mwc::svc::Json(endpoints.size()));
    doc.set("rate", mwc::svc::Json(rate));
    doc.set("elapsed_s", mwc::svc::Json(elapsed_s));
    doc.set("req_per_s", mwc::svc::Json(rps));
    doc.set("latency_ms_mean", mwc::svc::Json(mean));
    doc.set("latency_ms_p50", mwc::svc::Json(p50));
    doc.set("latency_ms_p95", mwc::svc::Json(p95));
    doc.set("latency_ms_p99", mwc::svc::Json(p99));
    if (any_stages) {
      mwc::svc::Json stages_doc = mwc::svc::Json::object();
      for (const char* key : kStageKeys) {
        const auto& h =
            snapshot.histograms.at(std::string("loadgen.stage.") + key);
        mwc::svc::Json s = mwc::svc::Json::object();
        s.set("count", mwc::svc::Json(static_cast<double>(h.count)));
        s.set("mean",
              mwc::svc::Json(h.count > 0
                                 ? h.sum / static_cast<double>(h.count)
                                 : 0.0));
        s.set("p50", mwc::svc::Json(h.quantile(0.50)));
        s.set("p95", mwc::svc::Json(h.quantile(0.95)));
        s.set("p99", mwc::svc::Json(h.quantile(0.99)));
        s.set("max", mwc::svc::Json(h.max));
        stages_doc.set(key, std::move(s));
      }
      doc.set("stage_ms", std::move(stages_doc));
    }
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (f == nullptr) {
      std::perror("fopen --json");
      return 1;
    }
    const std::string text = doc.dump() + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  const bool failed =
      tally.errors > 0 || hist.count == 0 || write_failed;
  return failed && args.get_bool_or("strict", true) ? 1 : 0;
}
